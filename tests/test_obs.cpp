// Observability subsystem tests: the counter registry, the sliding
// demand window, the timeline tracer's JSON export and -- the contract
// the whole subsystem hangs on -- that instrumentation never perturbs
// simulation results (trace on/off => byte-identical sink output).
// Also the streaming-merge memory regression: folding N slices must
// keep O(jobs) live aggregators, not O(N).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "metrics/aggregator.hpp"
#include "obs/demand_window.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace cbus {
namespace {

using exp::ExperimentResult;
using exp::ExperimentSpec;
using exp::RunOptions;

[[nodiscard]] ExperimentSpec parse(const std::string& text) {
  std::istringstream in(text);
  return exp::parse_experiment(in);
}

[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

[[nodiscard]] std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The JSON sink rendering -- the byte-identity yardstick.
[[nodiscard]] std::string json_of(const ExperimentSpec& spec,
                                  const ExperimentResult& result) {
  std::ostringstream out;
  exp::make_sink(exp::SinkKind::kJson)->write(spec, result.jobs, out);
  return out.str();
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, CounterGaugeTimerReadBack) {
  obs::Registry registry;
  obs::Counter& hits = registry.counter("hits");
  hits.add();
  hits.add(4);
  obs::Gauge& depth = registry.gauge("depth");
  depth.set(3.0);
  depth.set(1.5);
  registry.timer("fold").add(std::chrono::nanoseconds(2'000'000));

  if constexpr (obs::kEnabled) {
    EXPECT_EQ(registry.counter("hits").value(), 5u);
    EXPECT_DOUBLE_EQ(registry.gauge("depth").value(), 1.5);
    EXPECT_DOUBLE_EQ(registry.gauge("depth").max(), 3.0);
    EXPECT_EQ(registry.timer("fold").intervals(), 1u);
    EXPECT_DOUBLE_EQ(registry.timer("fold").total_seconds(), 2e-3);
  } else {
    EXPECT_EQ(registry.counter("hits").value(), 0u);  // compiled out
  }
}

TEST(Registry, SameNameReturnsSameInstrument) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("x");
  // Force deque growth; `a` must stay valid (reference stability).
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&a, &registry.counter("x"));
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  obs::Registry registry;
  (void)registry.counter("first");
  (void)registry.gauge("second");
  (void)registry.timer("third");
  (void)registry.counter("fourth");
  const std::vector<obs::Registry::Sample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "first");
  EXPECT_EQ(snap[1].name, "second");
  EXPECT_EQ(snap[2].name, "third");
  EXPECT_EQ(snap[3].name, "fourth");
}

TEST(Registry, WriteJsonRendersEveryInstrument) {
  obs::Registry registry;
  registry.counter("requests").add(7);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_NE(out.str().find("\"requests\""), std::string::npos) << out.str();
}

// --- DemandWindow -----------------------------------------------------------

TEST(DemandWindow, CountsRecentEventsOnly) {
  obs::DemandWindow window(2, /*window=*/64, /*buckets=*/16);
  window.record(0, 10);
  window.record(0, 11);
  window.record(1, 12, 5);
  EXPECT_EQ(window.demand(0, 12), 2u);
  EXPECT_EQ(window.demand(1, 12), 5u);
  // Far past the window, everything has expired.
  EXPECT_EQ(window.demand(0, 10'000), 0u);
  EXPECT_EQ(window.demand(1, 10'000), 0u);
}

TEST(DemandWindow, RateIsDemandOverWindow) {
  obs::DemandWindow window(1, /*window=*/64, /*buckets=*/16);
  for (Cycle c = 0; c < 32; ++c) window.record(0, c);
  const double rate = window.rate(0, 31);
  EXPECT_GT(rate, 0.0);
  EXPECT_LE(rate, 1.0);
}

// --- Timeline (through the runner, as --trace uses it) ----------------------

/// A tiny 4-core H-CBA contention campaign, the acceptance scenario.
[[nodiscard]] ExperimentSpec hcba_spec() {
  return parse(
      "name = obs-test\n"
      "scenario = con\n"
      "kernel = matrix\n"
      "setup = hcba\n"
      "cores = 4\n"
      "runs = 3\n"
      "seed = 0x0B5\n"
      "summary = off\n");
}

TEST(Timeline, TraceFileContainsSpansAndCounterTracks) {
  ExperimentSpec spec = hcba_spec();
  spec.trace_path = temp_path("obs_trace.json");
  spec.trace_run = 1;
  const ExperimentResult result = exp::run_experiment(spec, 1u);
  ASSERT_EQ(result.failed_jobs(), 0u);

  const std::string trace = file_bytes(spec.trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"bus masters\""), std::string::npos);
  EXPECT_NE(trace.find("\"credit m0\""), std::string::npos);
  EXPECT_NE(trace.find("\"eligible m3\""), std::string::npos);
  EXPECT_NE(trace.find("\"demand m0\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);  // counters
  EXPECT_NE(trace.find("\"provenance\""), std::string::npos);
  std::remove(spec.trace_path.c_str());
}

TEST(Timeline, SegmentedTraceHasBridgeQueueTracks) {
  ExperimentSpec spec = hcba_spec();
  spec.set_platform_key("topology", "segmented:2");
  spec.trace_path = temp_path("obs_seg_trace.json");
  const ExperimentResult result = exp::run_experiment(spec, 1u);
  ASSERT_EQ(result.failed_jobs(), 0u);

  const std::string trace = file_bytes(spec.trace_path);
  EXPECT_NE(trace.find("\"bridge s0->s1\""), std::string::npos);
  EXPECT_NE(trace.find("\"bridge s1->s0\""), std::string::npos);
  std::remove(spec.trace_path.c_str());
}

TEST(Timeline, WindowBoundsCaptureVolume) {
  ExperimentSpec spec = hcba_spec();
  spec.trace_path = temp_path("obs_window_trace.json");
  spec.trace_window_begin = 100;
  spec.trace_window_end = 200;
  const ExperimentResult result = exp::run_experiment(spec, 1u);
  ASSERT_EQ(result.failed_jobs(), 0u);
  const std::string narrow = file_bytes(spec.trace_path);

  spec.trace_window_begin = 0;
  spec.trace_window_end = std::numeric_limits<Cycle>::max();
  (void)exp::run_experiment(spec, 1u);
  const std::string full = file_bytes(spec.trace_path);

  EXPECT_LT(narrow.size(), full.size());
  std::remove(spec.trace_path.c_str());
}

/// The contract everything else rests on: instrumenting a run must not
/// change a single output byte.
TEST(Timeline, TracingDoesNotPerturbResults) {
  ExperimentSpec bare = hcba_spec();
  const ExperimentResult reference = exp::run_experiment(bare, 1u);

  ExperimentSpec traced = hcba_spec();
  traced.trace_path = temp_path("obs_perturb_trace.json");
  traced.trace_run = 0;
  const ExperimentResult instrumented = exp::run_experiment(traced, 1u);

  // Hash the spec identically (obs keys are excluded from the hash)...
  EXPECT_EQ(exp::spec_hash(bare), exp::spec_hash(traced));
  // ...and produce byte-identical sink output.
  EXPECT_EQ(json_of(bare, reference), json_of(bare, instrumented));
  std::remove(traced.trace_path.c_str());
}

/// Batched campaigns: the instrument hook forces single-lane batches
/// (lockstep lanes must be exact replicas), which must still be
/// byte-identical to the bare lockstep run.
TEST(Timeline, TracingABatchedCampaignDoesNotPerturbResults) {
  ExperimentSpec bare = hcba_spec();
  bare.batch = 4;
  const ExperimentResult reference = exp::run_experiment(bare, 2u);

  ExperimentSpec traced = bare;
  traced.trace_path = temp_path("obs_batched_trace.json");
  traced.trace_run = 2;
  const ExperimentResult instrumented = exp::run_experiment(traced, 2u);

  EXPECT_EQ(json_of(bare, reference), json_of(bare, instrumented));
  EXPECT_FALSE(file_bytes(traced.trace_path).empty());
  std::remove(traced.trace_path.c_str());
}

TEST(Timeline, TraceRunOutOfRangeIsRejected) {
  ExperimentSpec spec = hcba_spec();
  spec.trace_path = temp_path("obs_reject_trace.json");
  spec.trace_run = spec.runs;  // one past the end
  EXPECT_THROW((void)exp::validate_spec(spec), std::invalid_argument);
}

// --- Telemetry --------------------------------------------------------------

TEST(Telemetry, RunnerFillsProgressCounters) {
  ExperimentSpec spec = hcba_spec();
  const ExperimentResult result = exp::run_experiment(spec, 1u);
  const obs::Telemetry& t = result.telemetry;
  EXPECT_EQ(t.total_runs, spec.runs);
  EXPECT_EQ(t.runs_done, spec.runs);
  EXPECT_EQ(t.slices_done, t.total_slices);
  EXPECT_GT(t.wall_seconds, 0.0);
  EXPECT_GT(t.runs_per_sec(), 0.0);
  EXPECT_DOUBLE_EQ(t.eta_seconds(), 0.0);  // finished
  EXPECT_GT(t.peak_rss_kb, 0);
  ASSERT_EQ(t.thread_busy_seconds.size(), 1u);
  EXPECT_GT(t.thread_busy_seconds[0], 0.0);
  EXPECT_EQ(t.slice_wall_ms.count(), t.slices_done);
}

TEST(Telemetry, JsonDocumentCarriesSchemaAndPhase) {
  obs::Telemetry t;
  t.total_runs = 10;
  t.runs_done = 4;
  t.wall_seconds = 2.0;
  t.thread_busy_seconds = {1.0, 0.5};
  std::ostringstream out;
  obs::write_telemetry_json(out, t, "run");
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"phase\": \"run\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"runs_per_sec\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_busy_fraction\""), std::string::npos);
  EXPECT_NE(doc.find("\"provenance\""), std::string::npos);
}

TEST(Telemetry, EtaCountsRemainingWork) {
  obs::Telemetry t;
  t.total_runs = 100;
  t.runs_done = 50;
  t.wall_seconds = 10.0;  // 5 runs/s -> 10s to go
  EXPECT_DOUBLE_EQ(t.eta_seconds(), 10.0);
}

TEST(ProgressMeter, FinishAlwaysRendersToTheGivenStream) {
  std::ostringstream err;
  obs::ProgressMeter meter(err, 8);
  meter.update(2, 1);  // may be throttled; finish may not be
  meter.finish(8, 4);
  EXPECT_NE(err.str().find("8/8 runs"), std::string::npos) << err.str();
  EXPECT_NE(err.str().find('\n'), std::string::npos);  // line terminated
}

// --- streaming-merge memory regression (census) -----------------------------

/// Fold a 2-job x 12-slice sharded campaign and require the streaming
/// path to hold O(jobs) aggregators, never O(slices). RecordCensus
/// guards the same property for per-run records.
TEST(StreamingFold, PeakLiveAggregatorsIndependentOfSliceCount) {
  ExperimentSpec spec = parse(
      "name = obs-census\n"
      "scenario = con\n"
      "kernel = matrix\n"
      "sweep setup = rp cba\n"
      "runs = 12\n"
      "batch = 2\n"
      "seed = 0xFACE\n"
      "retain = stream\n"
      "summary = off\n");

  // Shard the campaign into 3 checkpoint files.
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    RunOptions options;
    options.threads_override = 1;
    options.shard_index = i;
    options.shard_count = 3;
    options.checkpoint_path =
        temp_path("obs_census_shard" + std::to_string(i) + ".ckpt");
    (void)exp::run_experiment(spec, options);
    paths.push_back(options.checkpoint_path);
  }

  const std::uint64_t before = metrics::Aggregator::live_count();
  metrics::Aggregator::reset_peak_live_count();
  const ExperimentResult folded = exp::fold_checkpoints_streaming(spec, paths);
  const std::uint64_t peak = metrics::Aggregator::peak_live_count();

  // 2 job results in flight plus one decoded slice and small transients;
  // the 12-slice plan must NOT show up in the peak. (The materializing
  // path would hold all 12 at once.)
  EXPECT_LE(peak - before, 6u) << "streaming fold materialized slices";

  // And the streamed result matches the materializing path bit for bit.
  const exp::LoadedCheckpoint merged = exp::merge_checkpoints(spec, paths);
  const ExperimentResult reference =
      exp::finalize_from_slices(spec, merged.slices);
  EXPECT_EQ(json_of(spec, reference), json_of(spec, folded));

  // Fold telemetry covered the whole campaign.
  EXPECT_EQ(folded.telemetry.slices_done, 12u);
  EXPECT_EQ(folded.telemetry.runs_done, 24u);

  for (const std::string& path : paths) std::remove(path.c_str());
}

TEST(StreamingFold, RejectsIncompleteCheckpointSet) {
  ExperimentSpec spec = parse(
      "name = obs-census2\n"
      "scenario = con\n"
      "kernel = matrix\n"
      "runs = 4\n"
      "batch = 2\n"
      "seed = 0xD0\n"
      "retain = stream\n"
      "summary = off\n");
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 2; ++i) {
    RunOptions options;
    options.threads_override = 1;
    options.shard_index = i;
    options.shard_count = 2;
    options.checkpoint_path =
        temp_path("obs_census2_shard" + std::to_string(i) + ".ckpt");
    (void)exp::run_experiment(spec, options);
    paths.push_back(options.checkpoint_path);
  }
  try {
    (void)exp::fold_checkpoints_streaming(spec, {paths[0]});
    FAIL() << "should have rejected one file of a two-shard set";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint file(s) were given"),
              std::string::npos)
        << e.what();
  }
  for (const std::string& path : paths) std::remove(path.c_str());
}

}  // namespace
}  // namespace cbus
