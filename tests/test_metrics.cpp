// Unit tests for the metrics subsystem: Record/Value semantics, key
// references, the campaign Aggregator and the standard probes.
#include <gtest/gtest.h>

#include <cmath>

#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "metrics/aggregator.hpp"
#include "metrics/probes.hpp"
#include "metrics/record.hpp"

namespace cbus::metrics {
namespace {

// --- Value / Record ---------------------------------------------------------

TEST(Record, ScalarAndVectorValues) {
  Record r;
  r.set("a.scalar", 2.5);
  r.set("a.vector", std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(r.has("a.scalar"));
  EXPECT_FALSE(r.has("a.missing"));
  EXPECT_DOUBLE_EQ(r.at("a.scalar").scalar(), 2.5);
  EXPECT_FALSE(r.at("a.scalar").is_vector());
  EXPECT_TRUE(r.at("a.vector").is_vector());
  EXPECT_EQ(r.at("a.vector").size(), 3u);
  EXPECT_DOUBLE_EQ(r.at("a.vector")[1], 2.0);
  // Scalars expose a 1-element span for uniform consumption.
  EXPECT_EQ(r.at("a.scalar").elements().size(), 1u);
  EXPECT_THROW((void)r.at("a.vector").scalar(), std::invalid_argument);
  EXPECT_THROW((void)r.at("a.missing"), std::invalid_argument);
}

TEST(Record, PreservesInsertionOrderAndReplacesInPlace) {
  Record r;
  r.set("z", 1.0);
  r.set("a", 2.0);
  r.set("m", 3.0);
  r.set("z", 9.0);  // replace, keep position
  EXPECT_EQ(r.keys(), (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_DOUBLE_EQ(r.at("z").scalar(), 9.0);
  EXPECT_EQ(r.size(), 3u);
}

TEST(Record, RejectsEmptyKey) {
  Record r;
  EXPECT_THROW(r.set("", 1.0), std::invalid_argument);
}

// --- key references ---------------------------------------------------------

TEST(KeyRef, ParsesBareAndElementForms) {
  EXPECT_EQ(parse_key_ref("tua.cycles"),
            (KeyRef{"tua.cycles", std::nullopt}));
  EXPECT_EQ(parse_key_ref("bus.occupancy_share[2]"),
            (KeyRef{"bus.occupancy_share", 2}));
  EXPECT_EQ(element_key("bus.occupancy_share", 2), "bus.occupancy_share[2]");
}

TEST(KeyRef, RejectsMalformedReferences) {
  EXPECT_THROW((void)parse_key_ref(""), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x["), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[]"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[2"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x]2["), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[two]"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("[2]"), std::invalid_argument);
}

// --- Aggregator -------------------------------------------------------------

[[nodiscard]] Record run_record(double cycles, double util,
                                std::vector<double> shares) {
  Record r;
  r.set("tua.cycles", cycles);
  r.set("bus.utilization", util);
  r.set("bus.occupancy_share", std::move(shares));
  return r;
}

TEST(Aggregator, FoldsScalarsAndVectors) {
  Aggregator agg;
  agg.add(run_record(100.0, 0.5, {0.25, 0.75}));
  agg.add(run_record(120.0, 0.7, {0.35, 0.65}));
  EXPECT_EQ(agg.runs(), 2u);
  EXPECT_EQ(agg.keys(),
            (std::vector<std::string>{"tua.cycles", "bus.utilization",
                                      "bus.occupancy_share"}));
  EXPECT_EQ(agg.width("tua.cycles"), 1u);
  EXPECT_EQ(agg.width("bus.occupancy_share"), 2u);
  EXPECT_EQ(agg.width("nope"), 0u);
  EXPECT_DOUBLE_EQ(agg.element_stats("tua.cycles").mean(), 110.0);
  EXPECT_DOUBLE_EQ(agg.element_stats("bus.occupancy_share", 1).mean(), 0.7);
  EXPECT_EQ(agg.element_samples("tua.cycles"),
            (std::vector<double>{100.0, 120.0}));
  EXPECT_EQ(agg.element_samples("bus.occupancy_share", 0),
            (std::vector<double>{0.25, 0.35}));
  EXPECT_FALSE(agg.is_vector("tua.cycles"));
  EXPECT_TRUE(agg.is_vector("bus.occupancy_share"));
}

TEST(Aggregator, RejectsShapeChanges) {
  Aggregator agg;
  agg.add(run_record(100.0, 0.5, {0.25, 0.75}));
  // Width change on a vector key.
  EXPECT_THROW(agg.add(run_record(1.0, 0.5, {0.1, 0.2, 0.7})),
               std::invalid_argument);
  // Missing key.
  Record partial;
  partial.set("tua.cycles", 1.0);
  EXPECT_THROW(agg.add(partial), std::invalid_argument);
  // Same size but different key order/name.
  Record renamed;
  renamed.set("tua.cycles", 1.0);
  renamed.set("bus.wrong", 0.5);
  renamed.set("bus.occupancy_share", std::vector<double>{0.5, 0.5});
  EXPECT_THROW(agg.add(renamed), std::invalid_argument);
}

TEST(Aggregator, SummarizeEmitsStatsAndPercentiles) {
  Aggregator agg;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    Record r;
    r.set("k", x);
    r.set("v", std::vector<double>{x, 2.0 * x});
    agg.add(r);
  }
  const double percentiles[] = {50.0, 100.0};
  const Record summary = agg.summarize(percentiles);
  EXPECT_DOUBLE_EQ(summary.at("k.mean").scalar(), 2.5);
  EXPECT_DOUBLE_EQ(summary.at("k.min").scalar(), 1.0);
  EXPECT_DOUBLE_EQ(summary.at("k.max").scalar(), 4.0);
  EXPECT_NEAR(summary.at("k.stddev").scalar(), std::sqrt(5.0 / 3.0),
              1e-12);
  EXPECT_DOUBLE_EQ(summary.at("k.p50").scalar(), 2.5);
  EXPECT_DOUBLE_EQ(summary.at("k.p100").scalar(), 4.0);
  // Vector keys summarize element-wise, keeping their shape.
  EXPECT_TRUE(summary.at("v.mean").is_vector());
  EXPECT_DOUBLE_EQ(summary.at("v.mean")[1], 5.0);
  EXPECT_DOUBLE_EQ(summary.at("v.p50")[0], 2.5);

  EXPECT_THROW((void)agg.summarize(std::vector<double>{101.0}),
               std::invalid_argument);
}

TEST(Aggregator, EmptySummarizesToEmptyRecord) {
  const Aggregator agg;
  EXPECT_TRUE(agg.empty());
  EXPECT_TRUE(agg.summarize().empty());
  EXPECT_THROW((void)agg.element_stats("tua.cycles"),
               std::invalid_argument);
}

// --- probes -----------------------------------------------------------------

[[nodiscard]] bus::BusStatistics two_master_stats() {
  bus::BusStatistics stats;
  stats.master.resize(2);
  stats.master[0] = {.requests = 10,
                     .grants = 10,
                     .completions = 10,
                     .wait_cycles = 40,
                     .hold_cycles = 50,
                     .max_wait = 12};
  stats.master[1] = {.requests = 6,
                     .grants = 5,
                     .completions = 5,
                     .wait_cycles = 10,
                     .hold_cycles = 150,
                     .max_wait = 7};
  stats.busy_cycles = 200;
  stats.idle_cycles = 50;
  stats.total_cycles = 250;
  return stats;
}

TEST(Probes, BusProbeMatchesHandComputedShares) {
  const auto stats = two_master_stats();
  Record r;
  probe_bus(stats, r);
  EXPECT_DOUBLE_EQ(r.at("bus.utilization").scalar(), 200.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.occupancy_share")[0], 50.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.occupancy_share")[1], 150.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.grant_share")[0], 10.0 / 15.0);
  EXPECT_DOUBLE_EQ(r.at("bus.grant_share")[1], 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(r.at("bus.requests")[1], 6.0);
  EXPECT_DOUBLE_EQ(r.at("bus.mean_wait")[0], 4.0);
  EXPECT_DOUBLE_EQ(r.at("bus.max_wait")[1], 7.0);
}

TEST(Probes, FairnessProbeMatchesFairnessFunctions) {
  const auto stats = two_master_stats();
  Record r;
  probe_fairness(stats, r);
  // Jain over occupancy {50, 150}: 200^2 / (2 * (2500 + 22500)) = 0.8.
  EXPECT_DOUBLE_EQ(r.at("fair.jain_occupancy").scalar(), 0.8);
  // Jain over grants {10, 5}: 225 / (2 * 125) = 0.9.
  EXPECT_DOUBLE_EQ(r.at("fair.jain_grants").scalar(), 0.9);
  EXPECT_DOUBLE_EQ(r.at("fair.maxmin_occupancy").scalar(), 3.0);
  EXPECT_DOUBLE_EQ(r.at("fair.maxmin_grants").scalar(), 2.0);
}

TEST(Probes, CreditProbeWithAndWithoutFilter) {
  Record none;
  probe_credit(nullptr, none);
  EXPECT_DOUBLE_EQ(none.at("credit.underflows").scalar(), 0.0);
  EXPECT_FALSE(none.has("credit.budget"));

  core::CreditFilter filter(core::CbaConfig::homogeneous(4, 56));
  Record with;
  probe_credit(&filter, with);
  EXPECT_DOUBLE_EQ(with.at("credit.underflows").scalar(), 0.0);
  EXPECT_EQ(with.at("credit.budget").size(), 4u);
}

TEST(Probes, CatalogCoversProbeKeysWithPerMasterFlags) {
  const auto stats = two_master_stats();
  core::CreditFilter filter(core::CbaConfig::homogeneous(2, 56));
  Record r;
  probe_tua(1234, cpu::CoreStats{}, r);
  probe_bus(stats, r);
  probe_fairness(stats, r);
  probe_credit(&filter, r);
  probe_segments(nullptr, stats, r);
  // Every emitted key is in the catalog with the right shape...
  for (const auto& [key, value] : r) {
    const MetricInfo* info = find_metric(key);
    ASSERT_NE(info, nullptr) << key;
    EXPECT_EQ(info->per_master, value.is_vector()) << key;
    EXPECT_FALSE(info->description.empty()) << key;
  }
  // ... and with a CBA filter installed the probes cover the whole
  // catalog, so `metrics = all` and --list metrics stay truthful.
  EXPECT_EQ(r.size(), metric_catalog().size());
  EXPECT_EQ(find_metric("no.such.key"), nullptr);
}

}  // namespace
}  // namespace cbus::metrics
