// Unit tests for the metrics subsystem: Record/Value semantics, key
// references, the campaign Aggregator and the standard probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>

#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "ctrl/controller.hpp"
#include "metrics/aggregator.hpp"
#include "metrics/probes.hpp"
#include "metrics/record.hpp"

namespace cbus::metrics {
namespace {

// --- Value / Record ---------------------------------------------------------

TEST(Record, ScalarAndVectorValues) {
  Record r;
  r.set("a.scalar", 2.5);
  r.set("a.vector", std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_TRUE(r.has("a.scalar"));
  EXPECT_FALSE(r.has("a.missing"));
  EXPECT_DOUBLE_EQ(r.at("a.scalar").scalar(), 2.5);
  EXPECT_FALSE(r.at("a.scalar").is_vector());
  EXPECT_TRUE(r.at("a.vector").is_vector());
  EXPECT_EQ(r.at("a.vector").size(), 3u);
  EXPECT_DOUBLE_EQ(r.at("a.vector")[1], 2.0);
  // Scalars expose a 1-element span for uniform consumption.
  EXPECT_EQ(r.at("a.scalar").elements().size(), 1u);
  EXPECT_THROW((void)r.at("a.vector").scalar(), std::invalid_argument);
  EXPECT_THROW((void)r.at("a.missing"), std::invalid_argument);
}

TEST(Record, PreservesInsertionOrderAndReplacesInPlace) {
  Record r;
  r.set("z", 1.0);
  r.set("a", 2.0);
  r.set("m", 3.0);
  r.set("z", 9.0);  // replace, keep position
  EXPECT_EQ(r.keys(), (std::vector<std::string>{"z", "a", "m"}));
  EXPECT_DOUBLE_EQ(r.at("z").scalar(), 9.0);
  EXPECT_EQ(r.size(), 3u);
}

TEST(Record, RejectsEmptyKey) {
  Record r;
  EXPECT_THROW(r.set("", 1.0), std::invalid_argument);
}

// --- key references ---------------------------------------------------------

TEST(KeyRef, ParsesBareAndElementForms) {
  EXPECT_EQ(parse_key_ref("tua.cycles"),
            (KeyRef{"tua.cycles", std::nullopt}));
  EXPECT_EQ(parse_key_ref("bus.occupancy_share[2]"),
            (KeyRef{"bus.occupancy_share", 2}));
  EXPECT_EQ(element_key("bus.occupancy_share", 2), "bus.occupancy_share[2]");
}

TEST(KeyRef, RejectsMalformedReferences) {
  EXPECT_THROW((void)parse_key_ref(""), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x["), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[]"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[2"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x]2["), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("x[two]"), std::invalid_argument);
  EXPECT_THROW((void)parse_key_ref("[2]"), std::invalid_argument);
}

// --- Aggregator -------------------------------------------------------------

[[nodiscard]] Record run_record(double cycles, double util,
                                std::vector<double> shares) {
  Record r;
  r.set("tua.cycles", cycles);
  r.set("bus.utilization", util);
  r.set("bus.occupancy_share", std::move(shares));
  return r;
}

TEST(Aggregator, FoldsScalarsAndVectors) {
  Aggregator agg{Aggregator::Options{.retain_raw = true}};
  agg.add(run_record(100.0, 0.5, {0.25, 0.75}));
  agg.add(run_record(120.0, 0.7, {0.35, 0.65}));
  EXPECT_EQ(agg.runs(), 2u);
  EXPECT_EQ(agg.keys(),
            (std::vector<std::string>{"tua.cycles", "bus.utilization",
                                      "bus.occupancy_share"}));
  EXPECT_EQ(agg.width("tua.cycles"), 1u);
  EXPECT_EQ(agg.width("bus.occupancy_share"), 2u);
  EXPECT_EQ(agg.width("nope"), 0u);
  EXPECT_DOUBLE_EQ(agg.element_stats("tua.cycles").mean(), 110.0);
  EXPECT_DOUBLE_EQ(agg.element_stats("bus.occupancy_share", 1).mean(), 0.7);
  EXPECT_EQ(agg.element_samples("tua.cycles"),
            (std::vector<double>{100.0, 120.0}));
  EXPECT_EQ(agg.element_samples("bus.occupancy_share", 0),
            (std::vector<double>{0.25, 0.35}));
  EXPECT_FALSE(agg.is_vector("tua.cycles"));
  EXPECT_TRUE(agg.is_vector("bus.occupancy_share"));
}

TEST(Aggregator, RejectsShapeChanges) {
  Aggregator agg;
  agg.add(run_record(100.0, 0.5, {0.25, 0.75}));
  // Width change on a vector key.
  EXPECT_THROW(agg.add(run_record(1.0, 0.5, {0.1, 0.2, 0.7})),
               std::invalid_argument);
  // Missing key.
  Record partial;
  partial.set("tua.cycles", 1.0);
  EXPECT_THROW(agg.add(partial), std::invalid_argument);
  // Same size but different key order/name.
  Record renamed;
  renamed.set("tua.cycles", 1.0);
  renamed.set("bus.wrong", 0.5);
  renamed.set("bus.occupancy_share", std::vector<double>{0.5, 0.5});
  EXPECT_THROW(agg.add(renamed), std::invalid_argument);
}

TEST(Aggregator, StreamsByDefaultAndRefusesRawReads) {
  // The default Aggregator keeps digests only; asking for the per-run
  // series is a contract violation, not an empty vector.
  Aggregator agg;
  agg.add(run_record(100.0, 0.5, {0.25, 0.75}));
  agg.add(run_record(120.0, 0.7, {0.35, 0.65}));
  EXPECT_FALSE(agg.retains_raw());
  EXPECT_DOUBLE_EQ(agg.element_stats("tua.cycles").mean(), 110.0);
  EXPECT_THROW((void)agg.element_samples("tua.cycles"),
               std::invalid_argument);
}

TEST(Aggregator, SummarizeEmitsStatsAndPercentiles) {
  Aggregator agg{Aggregator::Options{.retain_raw = true}};
  for (const double x : {1.0, 2.0, 3.0, 4.0}) {
    Record r;
    r.set("k", x);
    r.set("v", std::vector<double>{x, 2.0 * x});
    agg.add(r);
  }
  const double percentiles[] = {50.0, 100.0};
  const Record summary = agg.summarize(percentiles);
  EXPECT_DOUBLE_EQ(summary.at("k.mean").scalar(), 2.5);
  EXPECT_DOUBLE_EQ(summary.at("k.min").scalar(), 1.0);
  EXPECT_DOUBLE_EQ(summary.at("k.max").scalar(), 4.0);
  EXPECT_NEAR(summary.at("k.stddev").scalar(), std::sqrt(5.0 / 3.0),
              1e-12);
  EXPECT_DOUBLE_EQ(summary.at("k.p50").scalar(), 2.5);
  EXPECT_DOUBLE_EQ(summary.at("k.p100").scalar(), 4.0);
  // Vector keys summarize element-wise, keeping their shape.
  EXPECT_TRUE(summary.at("v.mean").is_vector());
  EXPECT_DOUBLE_EQ(summary.at("v.mean")[1], 5.0);
  EXPECT_DOUBLE_EQ(summary.at("v.p50")[0], 2.5);

  EXPECT_THROW((void)agg.summarize(std::vector<double>{101.0}),
               std::invalid_argument);
}

// Canonical digest bytes of a streaming aggregator; the property tests
// below compare these for bit-for-bit equality.
[[nodiscard]] std::string digest_bytes(const Aggregator& agg) {
  std::ostringstream out(std::ios::binary);
  agg.serialize(out);
  return out.str();
}

/// A record over every standard catalog key (scalars and 4-wide
/// per-master vectors), with values drawn from a deliberately nasty
/// pool: NaN, +-inf, +-0.0, denormals and magnitudes whose square
/// overflows a double.
[[nodiscard]] Record nasty_catalog_record(std::mt19937_64& rng) {
  static constexpr double kInf = std::numeric_limits<double>::infinity();
  static constexpr double kNasty[] = {
      std::numeric_limits<double>::quiet_NaN(),
      kInf,
      -kInf,
      0.0,
      -0.0,
      1e200,   // x*x overflows to inf
      -1e200,
      5e-324,  // smallest denormal
      1.0,
      -3.75,
      123456.789};
  std::uniform_int_distribution<std::size_t> pick(0, std::size(kNasty) - 1);
  std::uniform_real_distribution<double> uniform(-1e6, 1e6);
  const auto draw = [&]() {
    // Mostly ordinary finite values, with a steady trickle of edge cases.
    return rng() % 4 == 0 ? kNasty[pick(rng)] : uniform(rng);
  };
  Record r;
  for (const MetricInfo& info : metric_catalog()) {
    if (info.per_master) {
      r.set(std::string(info.key),
            std::vector<double>{draw(), draw(), draw(), draw()});
    } else {
      r.set(std::string(info.key), draw());
    }
  }
  return r;
}

TEST(Aggregator, ShardMergeIsOrderInvariantAndAssociative) {
  // The determinism contract behind checkpoints and cbus_merge: folding
  // any partition of a run set in any order gives BIT-identical digest
  // state. 100+ seeded random partitions over every catalog key, with
  // non-finite and overflow-prone values in the mix.
  std::mt19937_64 rng(0xC0FFEE5EEDull);
  std::vector<Record> runs;
  for (int i = 0; i < 64; ++i) runs.push_back(nasty_catalog_record(rng));

  Aggregator reference;
  for (const Record& r : runs) reference.add(r);
  const std::string expected = digest_bytes(reference);

  for (int trial = 0; trial < 120; ++trial) {
    // Partition the runs into 1..5 shards at random...
    std::uniform_int_distribution<std::size_t> pick_shards(1, 5);
    const std::size_t shard_count = pick_shards(rng);
    std::vector<Aggregator> shards(shard_count);
    std::vector<Record> shuffled = runs;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (const Record& r : shuffled) {
      shards[rng() % shard_count].add(r);
    }
    // ... and fold the shards back together in random order. Both the
    // partition and the merge order must be invisible in the bytes.
    std::shuffle(shards.begin(), shards.end(), rng);
    Aggregator merged;
    for (const Aggregator& shard : shards) merged.merge(shard);
    ASSERT_EQ(digest_bytes(merged), expected) << "trial " << trial;
    ASSERT_EQ(merged.runs(), runs.size());
  }
}

TEST(Aggregator, SerializeRoundTripsAndRejectsJunk) {
  std::mt19937_64 rng(42);
  Aggregator agg;
  for (int i = 0; i < 8; ++i) agg.add(nasty_catalog_record(rng));
  const std::string bytes = digest_bytes(agg);

  std::istringstream in(bytes);
  const Aggregator back = Aggregator::deserialize(in);
  EXPECT_EQ(digest_bytes(back), bytes);
  EXPECT_EQ(back.runs(), agg.runs());
  EXPECT_EQ(back.keys(), agg.keys());

  std::istringstream junk("not an aggregator digest");
  EXPECT_THROW((void)Aggregator::deserialize(junk), std::invalid_argument);

  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW((void)Aggregator::deserialize(truncated),
               std::invalid_argument);
}

TEST(Aggregator, MergeRefusesRawAndMismatchedSchemas) {
  Aggregator raw{Aggregator::Options{.retain_raw = true}};
  raw.add(run_record(1.0, 0.5, {0.5, 0.5}));
  Aggregator streaming;
  streaming.add(run_record(2.0, 0.5, {0.5, 0.5}));
  EXPECT_THROW(streaming.merge(raw), std::invalid_argument);

  Aggregator other_schema;
  Record r;
  r.set("different.key", 1.0);
  other_schema.add(r);
  EXPECT_THROW(streaming.merge(other_schema), std::invalid_argument);

  // Merging an empty aggregator into an empty one stays empty; merging
  // content into an empty one adopts the schema.
  Aggregator empty;
  empty.merge(Aggregator{});
  EXPECT_TRUE(empty.empty());
  empty.merge(streaming);
  EXPECT_EQ(digest_bytes(empty), digest_bytes(streaming));
}

TEST(Aggregator, StreamingQuantilesTrackExactOnes) {
  // The sketch's ~0.2% resolution contract, checked against the exact
  // quantile from a raw-retaining twin.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(1.0, 1e4);
  Aggregator stream;
  Aggregator raw{Aggregator::Options{.retain_raw = true}};
  for (int i = 0; i < 2000; ++i) {
    Record r;
    r.set("k", uniform(rng));
    stream.add(r);
    raw.add(r);
  }
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double exact = raw.element_quantile("k", 0, q);
    const double approx = stream.element_quantile("k", 0, q);
    EXPECT_NEAR(approx, exact, std::abs(exact) * 0.005 + 1e-12) << q;
  }
}

TEST(Aggregator, EmptySummarizesToEmptyRecord) {
  const Aggregator agg;
  EXPECT_TRUE(agg.empty());
  EXPECT_TRUE(agg.summarize().empty());
  EXPECT_THROW((void)agg.element_stats("tua.cycles"),
               std::invalid_argument);
}

// --- probes -----------------------------------------------------------------

[[nodiscard]] bus::BusStatistics two_master_stats() {
  bus::BusStatistics stats;
  stats.master.resize(2);
  stats.master[0] = {.requests = 10,
                     .grants = 10,
                     .completions = 10,
                     .wait_cycles = 40,
                     .hold_cycles = 50,
                     .max_wait = 12};
  stats.master[1] = {.requests = 6,
                     .grants = 5,
                     .completions = 5,
                     .wait_cycles = 10,
                     .hold_cycles = 150,
                     .max_wait = 7};
  stats.busy_cycles = 200;
  stats.idle_cycles = 50;
  stats.total_cycles = 250;
  return stats;
}

TEST(Probes, BusProbeMatchesHandComputedShares) {
  const auto stats = two_master_stats();
  Record r;
  probe_bus(stats, r);
  EXPECT_DOUBLE_EQ(r.at("bus.utilization").scalar(), 200.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.occupancy_share")[0], 50.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.occupancy_share")[1], 150.0 / 250.0);
  EXPECT_DOUBLE_EQ(r.at("bus.grant_share")[0], 10.0 / 15.0);
  EXPECT_DOUBLE_EQ(r.at("bus.grant_share")[1], 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(r.at("bus.requests")[1], 6.0);
  EXPECT_DOUBLE_EQ(r.at("bus.mean_wait")[0], 4.0);
  EXPECT_DOUBLE_EQ(r.at("bus.max_wait")[1], 7.0);
}

TEST(Probes, FairnessProbeMatchesFairnessFunctions) {
  const auto stats = two_master_stats();
  Record r;
  probe_fairness(stats, r);
  // Jain over occupancy {50, 150}: 200^2 / (2 * (2500 + 22500)) = 0.8.
  EXPECT_DOUBLE_EQ(r.at("fair.jain_occupancy").scalar(), 0.8);
  // Jain over grants {10, 5}: 225 / (2 * 125) = 0.9.
  EXPECT_DOUBLE_EQ(r.at("fair.jain_grants").scalar(), 0.9);
  EXPECT_DOUBLE_EQ(r.at("fair.maxmin_occupancy").scalar(), 3.0);
  EXPECT_DOUBLE_EQ(r.at("fair.maxmin_grants").scalar(), 2.0);
}

TEST(Probes, CreditProbeWithAndWithoutFilter) {
  Record none;
  probe_credit(nullptr, none);
  EXPECT_DOUBLE_EQ(none.at("credit.underflows").scalar(), 0.0);
  EXPECT_FALSE(none.has("credit.budget"));

  core::CreditFilter filter(core::CbaConfig::homogeneous(4, 56));
  Record with;
  probe_credit(&filter, with);
  EXPECT_DOUBLE_EQ(with.at("credit.underflows").scalar(), 0.0);
  EXPECT_EQ(with.at("credit.budget").size(), 4u);
}

TEST(Probes, CtrlProbeSkipsNullAndStatic) {
  const auto stats = two_master_stats();
  core::CreditFilter filter(core::CbaConfig::homogeneous(2, 56));
  Record r;
  probe_ctrl(nullptr, r);
  const ctrl::StaticController fixed(filter.state());
  probe_ctrl(&fixed, r);
  // ctrl.* keys appear only for the adaptive controller, so static
  // campaigns keep the pre-controller record shape byte-for-byte.
  EXPECT_EQ(r.size(), 0u);

  const auto adaptive = ctrl::make_controller(
      ctrl::parse_controller("adaptive:1024"), filter.state(), stats);
  probe_ctrl(adaptive.get(), r);
  EXPECT_EQ(r.at("ctrl.increment").size(), 2u);
  EXPECT_DOUBLE_EQ(r.at("ctrl.epochs").scalar(), 0.0);
}

TEST(Probes, CatalogCoversProbeKeysWithPerMasterFlags) {
  const auto stats = two_master_stats();
  core::CreditFilter filter(core::CbaConfig::homogeneous(2, 56));
  const auto controller = ctrl::make_controller(
      ctrl::parse_controller("adaptive:1024"), filter.state(), stats);
  Record r;
  probe_tua(1234, cpu::CoreStats{}, r);
  probe_bus(stats, r);
  probe_fairness(stats, r);
  probe_credit(&filter, r);
  probe_segments(nullptr, stats, r);
  probe_ctrl(controller.get(), r);
  // Every emitted key is in the catalog with the right shape...
  for (const auto& [key, value] : r) {
    const MetricInfo* info = find_metric(key);
    ASSERT_NE(info, nullptr) << key;
    EXPECT_EQ(info->per_master, value.is_vector()) << key;
    EXPECT_FALSE(info->description.empty()) << key;
  }
  // ... and with a CBA filter installed the probes cover the whole
  // catalog, so `metrics = all` and --list metrics stay truthful.
  EXPECT_EQ(r.size(), metric_catalog().size());
  EXPECT_EQ(find_metric("no.such.key"), nullptr);
}

}  // namespace
}  // namespace cbus::metrics
