#!/usr/bin/env bash
# Stream-separation check for --progress: the throttled progress line
# goes to stderr ONLY, so stdout (and every output file) must stay
# byte-identical with and without it. This is the contract that lets
# users add --progress to scripted sweeps without re-validating goldens.
#
# Usage: progress_stream_test.sh CBUS_SIM
set -euo pipefail

sim="$1"

work="$(mktemp -d "${TMPDIR:-/tmp}/cbus-progress-XXXXXX")"
trap 'rm -rf "$work"' EXIT

args=(--kernel matrix --setup hcba --scenario con --cores 4 --runs 6 --csv)

"$sim" "${args[@]}" >"$work/bare.out" 2>"$work/bare.err"
"$sim" "${args[@]}" --progress >"$work/progress.out" 2>"$work/progress.err"

if ! cmp -s "$work/bare.out" "$work/progress.out"; then
  echo "FAIL: --progress changed stdout"
  diff "$work/bare.out" "$work/progress.out" | head -10
  exit 1
fi
echo "ok: stdout byte-identical with and without --progress"

grep -q "runs" "$work/progress.err" || {
  echo "FAIL: no progress line on stderr"; exit 1; }
echo "ok: progress line rendered on stderr"

if grep -q "runs" "$work/bare.err"; then
  echo "FAIL: progress line rendered without --progress"
  exit 1
fi
echo "ok: silent without --progress"

# Telemetry files must not perturb stdout either.
"$sim" "${args[@]}" --telemetry "$work/telemetry.json" >"$work/telem.out"
cmp -s "$work/bare.out" "$work/telem.out" || {
  echo "FAIL: --telemetry changed stdout"; exit 1; }
grep -q '"phase": "run"' "$work/telemetry.json" || {
  echo "FAIL: telemetry document missing"; exit 1; }
echo "ok: --telemetry off the stdout path, document written"

echo "PASS"
