#!/usr/bin/env bash
# Timeline-tracer smoke: trace the acceptance scenario (4-core H-CBA,
# max-contention), validate the emitted Chrome trace JSON with
# tools/trace_check.py, and require stdout byte-identity with and
# without --trace (instrumentation must not perturb the simulation).
#
# Usage: trace_smoke_test.sh CBUS_SIM TRACE_CHECK_PY [PYTHON]
set -euo pipefail

sim="$1"
checker="$2"
python="${3:-python3}"

work="$(mktemp -d "${TMPDIR:-/tmp}/cbus-trace-XXXXXX")"
trap 'rm -rf "$work"' EXIT

args=(--kernel matrix --setup hcba --scenario con --cores 4 --runs 3)

"$sim" "${args[@]}" >"$work/bare.out"
"$sim" "${args[@]}" --trace "$work/trace.json" --trace-run 1 \
  >"$work/traced.out"

cmp -s "$work/bare.out" "$work/traced.out" || {
  echo "FAIL: --trace changed stdout"
  diff "$work/bare.out" "$work/traced.out" | head -10
  exit 1
}
echo "ok: stdout byte-identical with and without --trace"

"$python" "$checker" "$work/trace.json" --expect-masters 4
echo "ok: trace validates"

# The segmented topology adds bridge-queue counter tracks.
printf 'setup = hcba\ntopology = segmented:2\ncores = 4\n' >"$work/seg.cfg"
"$sim" --config "$work/seg.cfg" --kernel matrix --scenario con --runs 2 \
  --trace "$work/seg_trace.json" >/dev/null
"$python" "$checker" "$work/seg_trace.json" --expect-masters 4 \
  --expect-bridges 2
echo "ok: segmented trace has bridge-queue tracks"

# A window restricts capture without changing results.
"$sim" "${args[@]}" --trace "$work/window.json" --trace-window 100:200 \
  >"$work/window.out"
cmp -s "$work/bare.out" "$work/window.out" || {
  echo "FAIL: --trace-window changed stdout"; exit 1; }
"$python" "$checker" "$work/window.json" --expect-masters 4 \
  --max-ts 200
echo "ok: windowed trace validates"

echo "PASS"
