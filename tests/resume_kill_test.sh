#!/usr/bin/env bash
# Kill-and-resume determinism check: SIGKILL a checkpointed streaming
# campaign mid-flight, resume it, and require JSON byte-identical to an
# uninterrupted run. Also: a corrupted checkpoint must die with a clear
# checksum error, not undefined behavior.
#
# Usage: resume_kill_test.sh CBUS_SIM
set -euo pipefail

sim="$1"

work="$(mktemp -d "${TMPDIR:-/tmp}/cbus-resume-XXXXXX")"
trap 'rm -rf "$work"' EXIT

# A single-job campaign big enough to be mid-flight when the kill lands
# (roughly a few seconds of slices), small enough for CI.
cat > "$work/campaign.exp" <<'EOF'
name     = resume-kill
scenario = con
kernel   = matrix
cores    = 4
runs     = 300
batch    = 4
seed     = 0xFEEDFACE
retain   = stream
summary  = off
json     = resume_kill.json
EOF

# Uninterrupted reference.
mkdir "$work/ref"
(cd "$work/ref" && "$sim" --experiment "$work/campaign.exp" >/dev/null)
reference="$work/ref/resume_kill.json"
[[ -s "$reference" ]] || { echo "FAIL: reference JSON missing"; exit 1; }

# Start the checkpointed run, wait for the first appended slice, then
# SIGKILL -- right in the append window if we are lucky, leaving a
# truncated tail entry the resume must tolerate.
mkdir "$work/killed"
ckpt="$work/killed/campaign.ckpt"
(cd "$work/killed" \
 && exec "$sim" --experiment "$work/campaign.exp" --threads 2 \
          --checkpoint "$ckpt" >/dev/null) &
pid=$!
for _ in $(seq 1 200); do
  # The header is ~100 bytes; anything past 200 means slice appends
  # have started.
  size=$(stat -c %s "$ckpt" 2>/dev/null || echo 0)
  [[ "$size" -gt 200 ]] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
[[ -s "$ckpt" ]] || { echo "FAIL: no checkpoint was written"; exit 1; }

# Resume to completion (a second resume must also be a clean no-op).
(cd "$work/killed" && "$sim" --experiment "$work/campaign.exp" \
    --threads 2 --checkpoint "$ckpt" >/dev/null)
if ! cmp -s "$reference" "$work/killed/resume_kill.json"; then
  echo "FAIL: resumed JSON differs from the uninterrupted run"
  diff "$reference" "$work/killed/resume_kill.json" | head -20
  exit 1
fi
(cd "$work/killed" && "$sim" --experiment "$work/campaign.exp" \
    --threads 2 --checkpoint "$ckpt" >/dev/null)
cmp -s "$reference" "$work/killed/resume_kill.json" || {
  echo "FAIL: second resume changed the output"; exit 1; }
echo "ok: kill-and-resume output byte-identical"

# Corruption is a named error, not UB: flip one byte in the header
# payload and expect a checksum complaint and a nonzero exit.
orig=$(dd if="$ckpt" bs=1 skip=20 count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "\\$(printf '%03o' $(( (orig ^ 0x5a) & 0xff )))" \
  | dd of="$ckpt" bs=1 seek=20 count=1 conv=notrunc 2>/dev/null
if (cd "$work/killed" && "$sim" --experiment "$work/campaign.exp" \
      --threads 2 --checkpoint "$ckpt" >/dev/null 2>"$work/err.txt"); then
  echo "FAIL: corrupted checkpoint was accepted"
  exit 1
fi
grep -q "checksum" "$work/err.txt" || {
  echo "FAIL: corruption error did not mention the checksum:"
  cat "$work/err.txt"; exit 1; }
echo "ok: corrupted checkpoint rejected with a checksum error"

echo "PASS"
