// Arbitration-policy tests: selection rules, rotation/window/state
// machinery, statistical grant shares, work conservation and starvation
// properties for every policy the paper discusses (§II).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "bus/arbiter_factory.hpp"
#include "bus/deficit_age.hpp"
#include "bus/deficit_round_robin.hpp"
#include "bus/fifo.hpp"
#include "bus/lottery.hpp"
#include "bus/priority.hpp"
#include "bus/random_permutation.hpp"
#include "bus/round_robin.hpp"
#include "bus/tdma.hpp"
#include "rng/rand_bank.hpp"
#include "stats/fairness.hpp"

namespace cbus::bus {
namespace {

ArbInput input_of(std::uint32_t candidates, std::span<const Cycle> arrival,
                  Cycle grant_cycle = 1) {
  return ArbInput{candidates, arrival, grant_cycle};
}

const std::array<Cycle, 4> kZeroArrival{0, 0, 0, 0};

// --- round-robin ------------------------------------------------------------

TEST(RoundRobin, RotatesFromLastWinner) {
  RoundRobinArbiter arb(4);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);
  arb.on_grant(0, 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 1u);
  arb.on_grant(1, 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 2u);
  arb.on_grant(2, 0);
  arb.on_grant(3, 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);  // wrap
}

TEST(RoundRobin, SkipsIdleMasters) {
  RoundRobinArbiter arb(4);
  arb.on_grant(0, 0);
  EXPECT_EQ(arb.pick(input_of(0b1000, kZeroArrival)), 3u);
}

TEST(RoundRobin, SameMasterAgainIfOnlyCandidate) {
  RoundRobinArbiter arb(4);
  arb.on_grant(2, 0);
  EXPECT_EQ(arb.pick(input_of(0b0100, kZeroArrival)), 2u);
}

TEST(RoundRobin, ResetRestoresInitialRotation) {
  RoundRobinArbiter arb(4);
  arb.on_grant(1, 0);
  arb.reset();
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);
}

TEST(RoundRobin, EmptyCandidatesRejected) {
  RoundRobinArbiter arb(4);
  EXPECT_THROW((void)arb.pick(input_of(0, kZeroArrival)),
               std::invalid_argument);
}

// --- FIFO --------------------------------------------------------------------

TEST(Fifo, OldestArrivalWins) {
  FifoArbiter arb(4);
  const std::array<Cycle, 4> arrival{10, 5, 7, 20};
  EXPECT_EQ(arb.pick(input_of(0b1111, arrival)), 1u);
}

TEST(Fifo, TieBrokenRoundRobin) {
  FifoArbiter arb(4);
  const std::array<Cycle, 4> arrival{3, 3, 3, 3};
  EXPECT_EQ(arb.pick(input_of(0b1111, arrival)), 0u);
  arb.on_grant(0, 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, arrival)), 1u);
}

TEST(Fifo, OnlyCandidatesConsidered) {
  FifoArbiter arb(4);
  const std::array<Cycle, 4> arrival{1, 0, 99, 2};
  EXPECT_EQ(arb.pick(input_of(0b1100, arrival)), 3u);
}

// --- fixed priority -------------------------------------------------------------

TEST(Priority, DefaultOrderLowestIndexFirst) {
  FixedPriorityArbiter arb(4);
  EXPECT_EQ(arb.pick(input_of(0b1110, kZeroArrival)), 1u);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);
}

TEST(Priority, CustomOrder) {
  FixedPriorityArbiter arb(4, {2, 0, 3, 1});
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 2u);
  EXPECT_EQ(arb.pick(input_of(0b1011, kZeroArrival)), 0u);
}

TEST(Priority, RejectsDuplicateOrder) {
  EXPECT_THROW(FixedPriorityArbiter(3, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(FixedPriorityArbiter(3, {0, 1}), std::invalid_argument);
}

TEST(Priority, CanStarveLowPriority) {
  // The §II argument against priorities: with master 0 always pending,
  // master 3 never wins.
  FixedPriorityArbiter arb(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(arb.pick(input_of(0b1001, kZeroArrival)), 0u);
  }
}

// --- lottery ---------------------------------------------------------------------

TEST(Lottery, PicksOnlyCandidates) {
  rng::RandBank bank(3);
  LotteryArbiter arb(4, bank.open("t"));
  for (int i = 0; i < 1000; ++i) {
    const MasterId w = arb.pick(input_of(0b1010, kZeroArrival));
    EXPECT_TRUE(w == 1u || w == 3u);
  }
}

TEST(Lottery, EqualTicketsRoughlyUniform) {
  rng::RandBank bank(11);
  LotteryArbiter arb(4, bank.open("t"));
  std::array<int, 4> wins{};
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) ++wins[arb.pick(input_of(0b1111, kZeroArrival))];
  for (const int w : wins) {
    EXPECT_NEAR(w, kN / 4, 5 * std::sqrt(kN * 0.25 * 0.75));
  }
}

TEST(Lottery, WeightedTicketsShiftOdds) {
  rng::RandBank bank(13);
  LotteryArbiter arb(2, bank.open("t"), {3, 1});
  int wins0 = 0;
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) {
    if (arb.pick(input_of(0b11, kZeroArrival)) == 0u) ++wins0;
  }
  EXPECT_NEAR(static_cast<double>(wins0) / kN, 0.75, 0.02);
}

TEST(Lottery, RejectsZeroTickets) {
  rng::RandBank bank(1);
  EXPECT_THROW(LotteryArbiter(2, bank.open("t"), {1, 0}),
               std::invalid_argument);
}

// --- random permutations -------------------------------------------------------------

TEST(RandomPermutation, WindowIsAPermutation) {
  rng::RandBank bank(17);
  RandomPermutationArbiter arb(4, bank.open("t"));
  std::uint32_t seen = 0;
  for (const auto m : arb.window()) seen |= 1u << m;
  EXPECT_EQ(seen, 0b1111u);
}

TEST(RandomPermutation, EachMasterOncePerWindow) {
  rng::RandBank bank(19);
  RandomPermutationArbiter arb(4, bank.open("t"));
  std::array<int, 4> grants{};
  for (int i = 0; i < 4; ++i) {
    const MasterId w = arb.pick(input_of(0b1111, kZeroArrival));
    ++grants[w];
    arb.on_grant(w, 0);
  }
  for (const int g : grants) EXPECT_EQ(g, 1);
}

TEST(RandomPermutation, FollowsPermutationOrderAmongPending) {
  rng::RandBank bank(23);
  RandomPermutationArbiter arb(4, bank.open("t"));
  const auto window = arb.window();  // copy before grants reshuffle it
  const MasterId first = arb.pick(input_of(0b1111, kZeroArrival));
  EXPECT_EQ(first, window[0]);
  arb.on_grant(first, 0);
  const MasterId second = arb.pick(input_of(0b1111, kZeroArrival));
  EXPECT_EQ(second, window[1]);
}

TEST(RandomPermutation, WorkConservingWhenWindowExhausted) {
  rng::RandBank bank(29);
  RandomPermutationArbiter arb(2, bank.open("t"));
  // Grant master 0 within this window; master 0 pending again while master
  // 1 stays idle: the arbiter must redraw and still serve master 0.
  MasterId w = arb.pick(input_of(0b01, kZeroArrival));
  EXPECT_EQ(w, 0u);
  arb.on_grant(0, 0);
  w = arb.pick(input_of(0b01, kZeroArrival));
  EXPECT_EQ(w, 0u);
}

TEST(RandomPermutation, GrantSharesUniformUnderSaturation) {
  rng::RandBank bank(31);
  RandomPermutationArbiter arb(4, bank.open("t"));
  std::array<int, 4> wins{};
  constexpr int kN = 40'000;
  for (int i = 0; i < kN; ++i) {
    const MasterId w = arb.pick(input_of(0b1111, kZeroArrival));
    ++wins[w];
    arb.on_grant(w, 0);
  }
  for (const int w : wins) EXPECT_NEAR(w, kN / 4, 4 * std::sqrt(kN / 4.0));
}

TEST(RandomPermutation, FirstGrantOfWindowUniform) {
  // Across many windows, each master should open a window 1/4 of the time.
  rng::RandBank bank(37);
  RandomPermutationArbiter arb(4, bank.open("t"));
  std::array<int, 4> first{};
  constexpr int kWindows = 10'000;
  for (int w = 0; w < kWindows; ++w) {
    ++first[arb.window()[0]];
    for (int i = 0; i < 4; ++i) {
      const MasterId win = arb.pick(input_of(0b1111, kZeroArrival));
      arb.on_grant(win, 0);
    }
  }
  for (const int f : first) {
    EXPECT_NEAR(f, kWindows / 4, 5 * std::sqrt(kWindows * 0.25 * 0.75));
  }
}

// --- deficit round-robin --------------------------------------------------------------

TEST(DeficitRoundRobin, FirstPickTakesCursorMaster) {
  DeficitRoundRobinArbiter arb(4, 56);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);
}

TEST(DeficitRoundRobin, StaysOnMasterWhileDeficitPositive) {
  DeficitRoundRobinArbiter arb(4, 56);
  MasterId w = arb.pick(input_of(0b1111, kZeroArrival));
  arb.on_grant(w, 0);
  arb.on_complete(w, 5);  // spends 5 of the 56 quantum
  EXPECT_GT(arb.deficit(w), 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), w)
      << "remaining deficit keeps the rotation on the same master";
}

TEST(DeficitRoundRobin, MovesOnWhenDeficitExhausted) {
  DeficitRoundRobinArbiter arb(4, 56);
  MasterId w = arb.pick(input_of(0b1111, kZeroArrival));
  arb.on_complete(w, 56);  // full quantum consumed
  EXPECT_LE(arb.deficit(w), 0);
  EXPECT_NE(arb.pick(input_of(0b1111, kZeroArrival)), w);
}

TEST(DeficitRoundRobin, OverdrawCarriesIntoNextRound) {
  // A 56-cycle transaction against a 28-cycle quantum leaves a -28
  // deficit; the master needs TWO rotation visits before winning again.
  DeficitRoundRobinArbiter arb(2, 28);
  MasterId w = arb.pick(input_of(0b11, kZeroArrival));
  EXPECT_EQ(w, 0u);
  arb.on_complete(0, 56);
  EXPECT_EQ(arb.deficit(0), -28);
  // Master 1 now gets two quantum's worth before 0 returns.
  EXPECT_EQ(arb.pick(input_of(0b11, kZeroArrival)), 1u);
  arb.on_complete(1, 28);
  EXPECT_EQ(arb.pick(input_of(0b11, kZeroArrival)), 1u);
  arb.on_complete(1, 28);
  EXPECT_EQ(arb.pick(input_of(0b11, kZeroArrival)), 0u);
}

TEST(DeficitRoundRobin, IdleMasterDeficitResets) {
  DeficitRoundRobinArbiter arb(2, 56);
  // Master 0 idle: its accumulated quantum must not be banked.
  (void)arb.pick(input_of(0b10, kZeroArrival));
  EXPECT_EQ(arb.deficit(0), 0);
}

TEST(DeficitRoundRobin, CycleFairWithMixedHolds) {
  // Long-run occupancy equalizes even with 5- vs 56-cycle requests: the
  // defining DRR property (and CBA's, by a different mechanism).
  DeficitRoundRobinArbiter arb(2, 56);
  std::array<Cycle, 2> used{0, 0};
  const std::array<Cycle, 2> holds{5, 56};
  for (int i = 0; i < 4000; ++i) {
    const MasterId w = arb.pick(ArbInput{0b11, kZeroArrival, 0});
    arb.on_grant(w, 0);
    arb.on_complete(w, holds[w]);
    used[w] += holds[w];
  }
  const double share0 = static_cast<double>(used[0]) /
                        static_cast<double>(used[0] + used[1]);
  EXPECT_NEAR(share0, 0.5, 0.03);
}

TEST(DeficitRoundRobin, ResetClearsState) {
  DeficitRoundRobinArbiter arb(4, 56);
  arb.on_complete(0, 30);
  arb.reset();
  EXPECT_EQ(arb.deficit(0), 0);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival)), 0u);
}

TEST(DeficitRoundRobin, RejectsZeroQuantum) {
  EXPECT_THROW(DeficitRoundRobinArbiter(4, 0), std::invalid_argument);
}

// --- deficit-age ------------------------------------------------------------

TEST(DeficitAge, OlderRequestWinsAtEqualDeficit) {
  DeficitAgeArbiter arb(4, 56);
  const std::array<Cycle, 4> arrival{30, 10, 30, 30};
  EXPECT_EQ(arb.pick(input_of(0b1111, arrival, /*grant_cycle=*/40)), 1u);
}

TEST(DeficitAge, TiesBreakToLowestMaster) {
  DeficitAgeArbiter arb(4, 56);
  EXPECT_EQ(arb.pick(input_of(0b1010, kZeroArrival)), 1u);
}

TEST(DeficitAge, CompletionChargeDeprioritizesRecentWinner) {
  DeficitAgeArbiter arb(2, 56);
  const MasterId w = arb.pick(input_of(0b11, kZeroArrival));
  EXPECT_EQ(w, 0u);
  arb.on_grant(0, 0);
  arb.on_complete(0, 56);  // 0 consumed 56 cycles: 1 is now owed 56
  EXPECT_EQ(arb.pick(input_of(0b11, kZeroArrival)), 1u);
  EXPECT_EQ(arb.deficit(1), 56);  // rebased: 0 at the floor, 1 owed 56
  EXPECT_EQ(arb.deficit(0), 0);
}

TEST(DeficitAge, AgeOutweighsDeficitEventually) {
  // Master 1 is owed 56 cycles of service, but master 0's request has
  // aged past that debt: the age term must win the score.
  DeficitAgeArbiter arb(2, 56);
  (void)arb.pick(input_of(0b11, kZeroArrival));
  arb.on_complete(0, 56);  // spread: 1 owed 56 relative to 0
  const std::array<Cycle, 2> young_first{0, 57};
  EXPECT_EQ(arb.pick(input_of(0b11, young_first, /*grant_cycle=*/57)), 0u)
      << "an older-by-57-cycles request must outscore a 56-cycle debt";
  // The mirror case: debt 56 vs age 55 -- the debt wins.
  DeficitAgeArbiter arb2(2, 56);
  (void)arb2.pick(input_of(0b11, kZeroArrival));
  arb2.on_complete(0, 56);
  const std::array<Cycle, 2> other{2, 57};
  EXPECT_EQ(arb2.pick(input_of(0b11, other, /*grant_cycle=*/57)), 1u);
}

TEST(DeficitAge, SpreadIsCappedAtFourQuanta) {
  // However far behind a master falls, the rebased spread saturates at
  // 4 quanta (the Table-I saturation rule on the inner policy).
  DeficitAgeArbiter arb(2, 56);
  for (int i = 0; i < 100; ++i) {
    (void)arb.pick(input_of(0b11, kZeroArrival));
    arb.on_complete(0, 56);  // master 0 keeps consuming
  }
  EXPECT_EQ(arb.deficit(1), arb.bank_cap());
  EXPECT_EQ(arb.bank_cap(), 4 * 56);
}

TEST(DeficitAge, AbsentMasterForfeitsDeficit) {
  // "Absent" covers both idle and filtered-ineligible masters: the inner
  // policy must not bank priority for a master the CBA filter is
  // throttling (Table-I compatibility).
  DeficitAgeArbiter arb(2, 56);
  (void)arb.pick(input_of(0b11, kZeroArrival));
  arb.on_complete(0, 56);
  (void)arb.pick(input_of(0b11, kZeroArrival));
  EXPECT_EQ(arb.deficit(1), 56);
  (void)arb.pick(input_of(0b01, kZeroArrival));  // 1 gated or idle
  EXPECT_EQ(arb.deficit(1), 0);
}

TEST(DeficitAge, CycleFairWithMixedHolds) {
  // The DRR cycle-fairness property must survive the age weighting: with
  // both masters always pending (equal ages), long-run occupancy
  // equalizes across 5- vs 56-cycle requests.
  DeficitAgeArbiter arb(2, 56);
  std::array<Cycle, 2> used{0, 0};
  const std::array<Cycle, 2> holds{5, 56};
  for (int i = 0; i < 4000; ++i) {
    const MasterId w = arb.pick(ArbInput{0b11, kZeroArrival, 0});
    arb.on_grant(w, 0);
    arb.on_complete(w, holds[w]);
    used[w] += holds[w];
  }
  const double share0 = static_cast<double>(used[0]) /
                        static_cast<double>(used[0] + used[1]);
  EXPECT_NEAR(share0, 0.5, 0.03);
}

TEST(DeficitAge, ResetClearsState) {
  DeficitAgeArbiter arb(4, 56);
  arb.on_complete(0, 30);
  arb.reset();
  EXPECT_EQ(arb.deficit(0), 0);
}

TEST(DeficitAge, RejectsZeroQuantum) {
  EXPECT_THROW(DeficitAgeArbiter(4, 0), std::invalid_argument);
}

// --- TDMA ----------------------------------------------------------------------------

TEST(Tdma, GrantsOnlyOwnerAtSlotStart) {
  TdmaArbiter arb(4, 56);
  // grant_cycle 0 is the start of master 0's slot.
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 0)), 0u);
  // grant_cycle 56 starts master 1's slot.
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 56)), 1u);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 112)), 2u);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 168)), 3u);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 224)), 0u);
}

TEST(Tdma, NoGrantMidSlot) {
  TdmaArbiter arb(4, 56);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 1)), kNoMaster);
  EXPECT_EQ(arb.pick(input_of(0b1111, kZeroArrival, 55)), kNoMaster);
}

TEST(Tdma, NoGrantWhenOwnerIdle) {
  TdmaArbiter arb(4, 56);
  // Slot of master 0, but only master 1 pending: slot goes idle (the
  // non-work-conserving behaviour the paper describes).
  EXPECT_EQ(arb.pick(input_of(0b0010, kZeroArrival, 0)), kNoMaster);
}

TEST(Tdma, SlotOwnerHelper) {
  TdmaArbiter arb(4, 10);
  EXPECT_EQ(arb.slot_owner(0), 0u);
  EXPECT_EQ(arb.slot_owner(9), 0u);
  EXPECT_EQ(arb.slot_owner(10), 1u);
  EXPECT_EQ(arb.slot_owner(39), 3u);
  EXPECT_EQ(arb.slot_owner(40), 0u);
  EXPECT_TRUE(arb.is_slot_start(0));
  EXPECT_TRUE(arb.is_slot_start(10));
  EXPECT_FALSE(arb.is_slot_start(11));
}

// --- factory --------------------------------------------------------------------------

TEST(ArbiterFactory, BuildsEveryKind) {
  rng::RandBank bank(41);
  for (const auto kind : all_arbiter_kinds()) {
    const auto arb = make_arbiter(kind, 4, bank);
    ASSERT_NE(arb, nullptr);
    EXPECT_EQ(arb->n_masters(), 4u);
    EXPECT_EQ(arb->name(), to_string(kind));
  }
}

TEST(ArbiterFactory, ParseNames) {
  EXPECT_EQ(parse_arbiter_kind("rr"), ArbiterKind::kRoundRobin);
  EXPECT_EQ(parse_arbiter_kind("round-robin"), ArbiterKind::kRoundRobin);
  EXPECT_EQ(parse_arbiter_kind("fifo"), ArbiterKind::kFifo);
  EXPECT_EQ(parse_arbiter_kind("priority"), ArbiterKind::kFixedPriority);
  EXPECT_EQ(parse_arbiter_kind("lottery"), ArbiterKind::kLottery);
  EXPECT_EQ(parse_arbiter_kind("rp"), ArbiterKind::kRandomPermutation);
  EXPECT_EQ(parse_arbiter_kind("tdma"), ArbiterKind::kTdma);
  EXPECT_EQ(parse_arbiter_kind("drr"), ArbiterKind::kDeficitRoundRobin);
  EXPECT_EQ(parse_arbiter_kind("da"), ArbiterKind::kDeficitAge);
  EXPECT_EQ(parse_arbiter_kind("deficit-age"), ArbiterKind::kDeficitAge);
  EXPECT_THROW((void)parse_arbiter_kind("nonsense"), std::invalid_argument);
}

TEST(ArbiterFactory, UnknownKindErrorListsRegisteredNames) {
  // The error must name the whole registry (aligned with the
  // `--list arbiters` output), not just the bad value.
  try {
    (void)parse_arbiter_kind("nonsense");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nonsense"), std::string::npos);
    for (const ArbiterKind kind : all_arbiter_kinds()) {
      EXPECT_NE(message.find(std::string(short_name(kind))),
                std::string::npos)
          << "error message misses " << short_name(kind);
    }
  }
}

TEST(ArbiterFactory, HwCostsPopulated) {
  rng::RandBank bank(43);
  for (const auto kind : all_arbiter_kinds()) {
    const auto arb = make_arbiter(kind, 4, bank);
    const HwCost cost = arb->hw_cost();
    EXPECT_FALSE(cost.notes.empty());
    EXPECT_GT(cost.lut_equivalents, 0u);
  }
}

// --- cross-policy properties (parameterized) --------------------------------------------

class NoStarvationUnderSaturation
    : public ::testing::TestWithParam<ArbiterKind> {};

// Property: with every master always pending, every request-fair policy
// grants every master infinitely often (bounded gaps).
TEST_P(NoStarvationUnderSaturation, AllMastersServed) {
  rng::RandBank bank(47);
  const auto arb = make_arbiter(GetParam(), 4, bank, /*tdma_slot=*/8);
  std::array<int, 4> wins{};
  Cycle fake_clock = 0;
  for (int i = 0; i < 4000; ++i) {
    // For TDMA, walk grant_cycle across slot starts.
    const Cycle grant_cycle = GetParam() == ArbiterKind::kTdma
                                  ? (fake_clock += 8)
                                  : fake_clock++;
    const ArbInput in{0b1111, kZeroArrival, grant_cycle};
    const MasterId w = arb->pick(in);
    if (w == kNoMaster) continue;
    ++wins[w];
    arb->on_grant(w, grant_cycle);
  }
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_GT(wins[m], 0) << "master " << m << " starved under "
                          << to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(RequestFairPolicies, NoStarvationUnderSaturation,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation,
                                           ArbiterKind::kTdma));

class GrantShareFairness : public ::testing::TestWithParam<ArbiterKind> {};

// Property: under saturation, request-count shares are ~1/N for the
// request-fair policies -- the very fairness notion the paper argues is
// insufficient.
TEST_P(GrantShareFairness, JainNearOne) {
  rng::RandBank bank(53);
  const auto arb = make_arbiter(GetParam(), 4, bank, /*tdma_slot=*/8);
  std::array<double, 4> wins{};
  Cycle clock = 0;
  int grants = 0;
  while (grants < 8000) {
    const Cycle grant_cycle =
        GetParam() == ArbiterKind::kTdma ? (clock += 8) : clock++;
    const MasterId w = arb->pick(ArbInput{0b1111, kZeroArrival, grant_cycle});
    if (w == kNoMaster) continue;
    wins[w] += 1.0;
    arb->on_grant(w, grant_cycle);
    ++grants;
  }
  EXPECT_GT(stats::jain_index(wins), 0.995)
      << to_string(GetParam()) << " grant shares: " << wins[0] << ' '
      << wins[1] << ' ' << wins[2] << ' ' << wins[3];
}

INSTANTIATE_TEST_SUITE_P(RequestFairPolicies, GrantShareFairness,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation,
                                           ArbiterKind::kTdma));

}  // namespace
}  // namespace cbus::bus
