// In-order core tests: pipeline timing, L1 hit/miss paths, write-through
// store buffer drainage, load-after-store ordering, atomics, completion.
#include <gtest/gtest.h>

#include <memory>

#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "cpu/in_order_core.hpp"
#include "mem/partitioned_l2.hpp"
#include "rng/rand_bank.hpp"
#include "sim/kernel.hpp"
#include "workloads/fixed_stream.hpp"

namespace cbus::cpu {
namespace {

using workloads::FixedOpsStream;

CoreConfig test_core_config() {
  CoreConfig cfg;
  cfg.dl1 = cache::CacheConfig{.size_bytes = 1024,
                               .line_bytes = 32,
                               .ways = 2,
                               .placement = cache::PlacementKind::kModulo,
                               .replacement = cache::ReplacementKind::kLru};
  cfg.store_buffer_depth = 2;
  return cfg;
}

/// A full single-core rig: core + bus + partitioned L2.
struct CoreHarness {
  explicit CoreHarness(FixedOpsStream& stream)
      : bank(1),
        arb(1),
        l2(1,
           cache::CacheConfig{.size_bytes = 4096,
                              .line_bytes = 32,
                              .ways = 2,
                              .placement = cache::PlacementKind::kModulo,
                              .replacement = cache::ReplacementKind::kLru},
           mem::MemoryTimings{}, bank),
        b(bus::BusConfig{1, true}, arb, l2),
        core(0, test_core_config(), stream, b, bank) {
    kernel.add(core);
    kernel.add(b);
  }

  [[nodiscard]] Cycle run_to_done(Cycle max = 100'000) {
    const bool ok =
        kernel.run_until([this]() { return core.done(); }, max);
    EXPECT_TRUE(ok) << "core did not finish";
    return core.finish_cycle();
  }

  rng::RandBank bank;
  bus::RoundRobinArbiter arb;
  mem::PartitionedL2 l2;
  bus::NonSplitBus b;
  InOrderCore core;
  sim::Kernel kernel;
};

MemOp load(Addr a, std::uint32_t gap = 0) {
  return MemOp{MemOpKind::kLoad, a, gap};
}
MemOp store(Addr a, std::uint32_t gap = 0) {
  return MemOp{MemOpKind::kStore, a, gap};
}
MemOp atomic(Addr a, std::uint32_t gap = 0) {
  return MemOp{MemOpKind::kAtomic, a, gap};
}

// --- compute-only and trivial streams --------------------------------------------

TEST(InOrderCore, EmptyStreamFinishesImmediately) {
  FixedOpsStream stream({});
  CoreHarness h(stream);
  const Cycle t = h.run_to_done();
  EXPECT_LE(t, 1u);
}

TEST(InOrderCore, ComputeCyclesAreCounted) {
  FixedOpsStream stream({load(0x100, 10)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().compute_cycles, 10u);
}

// --- load timing -------------------------------------------------------------------

TEST(InOrderCore, LoadMissTiming) {
  // One load, cold caches. Cycle 0: L1 miss detected, bus request raised.
  // Arbitration cycle 0, transfer 1..28 (L2 cold miss), core resumes 29,
  // done at 29.
  FixedOpsStream stream({load(0x100)});
  CoreHarness h(stream);
  const Cycle t = h.run_to_done();
  EXPECT_EQ(t, 29u);
  EXPECT_EQ(h.core.stats().l1_misses, 1u);
  EXPECT_EQ(h.core.stats().bus_requests, 1u);
}

TEST(InOrderCore, SecondLoadSameLineHitsL1) {
  FixedOpsStream stream({load(0x100), load(0x104)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().l1_hits, 1u);
  EXPECT_EQ(h.core.stats().l1_misses, 1u);
  EXPECT_EQ(h.core.stats().bus_requests, 1u);
}

TEST(InOrderCore, L1HitIsOneCycle) {
  // Warm line, then 10 hit loads: each costs 1 cycle.
  std::vector<MemOp> ops{load(0x100)};
  for (int i = 0; i < 10; ++i) ops.push_back(load(0x100));
  FixedOpsStream warm_stream(ops);
  CoreHarness h(warm_stream);
  const Cycle t = h.run_to_done();
  EXPECT_EQ(t, 29u + 10u);
}

TEST(InOrderCore, SecondLoadSameLineL2HitCosts6) {
  // Two loads to the same L2 set but different L1 lines... simpler: a load
  // evicted from L1 but still in L2 costs 1 (detect) + 5 (L2 hit) = 6ish.
  // Construct: load A (L2+L1 fill), thrash L1 set with B,C (2-way), then
  // load A again -> L1 miss, L2 hit.
  const Addr a = 0x0000;
  const Addr b2 = 1024;   // same L1 set 0 (32 sets? 1KB/32B/2 = 16 sets)
  const Addr c = 2048;
  FixedOpsStream stream({load(a), load(b2), load(c), load(a)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().l1_misses, 4u);
  // Final load was an L2 hit: total L2 hits == 1.
  EXPECT_EQ(h.l2.stats(0).hits, 1u);
}

// --- stores and the write buffer ----------------------------------------------------

TEST(InOrderCore, StoreRetiresIntoBufferInOneCycle) {
  FixedOpsStream stream({store(0x100)});
  CoreHarness h(stream);
  const Cycle t = h.run_to_done();
  // Store retires cycle 0; drain request raised cycle 1; transfer 2..29
  // (L2 write-allocate miss 28); done when buffer empties (end cycle 29),
  // detected at cycle 30.
  EXPECT_EQ(h.core.stats().stores, 1u);
  EXPECT_GE(t, 29u);
  EXPECT_LE(t, 31u);
}

TEST(InOrderCore, StoreBufferFullStalls) {
  // Depth 2: three back-to-back stores to distinct cold lines must stall
  // the third until a drain completes.
  FixedOpsStream stream({store(0x100), store(0x200), store(0x300)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_GT(h.core.stats().sb_stall_cycles, 0u);
}

TEST(InOrderCore, StoreToLoadForwarding) {
  // A load to a line sitting in the store buffer is a 1-cycle hit and must
  // NOT issue a bus request of its own.
  FixedOpsStream stream({store(0x100), load(0x104)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().l1_hits, 1u);
  EXPECT_EQ(h.core.stats().bus_requests, 1u);  // only the store drain
}

TEST(InOrderCore, LoadMissWaitsForStoreDrain) {
  // Write-through ordering: a load miss to a DIFFERENT line may only issue
  // once the buffered store drained. The load's bus transaction must start
  // after the store's completes.
  FixedOpsStream stream({store(0x100), load(0x800)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  const auto& bs = h.b.statistics().master[0];
  EXPECT_EQ(bs.grants, 2u);
  // Serialized transfers: total hold 28 (store miss) + 28 (load miss).
  EXPECT_EQ(bs.hold_cycles, 56u);
  EXPECT_EQ(h.core.stats().bus_requests, 2u);
}

// --- atomics -------------------------------------------------------------------------

TEST(InOrderCore, AtomicHolds56AndBlocks) {
  FixedOpsStream stream({atomic(0x100)});
  CoreHarness h(stream);
  const Cycle t = h.run_to_done();
  // Request cycle 0, transfer 1..56, resume/finish 57.
  EXPECT_EQ(t, 57u);
  EXPECT_EQ(h.core.stats().atomics, 1u);
}

TEST(InOrderCore, AtomicDrainsStoreBufferFirst) {
  FixedOpsStream stream({store(0x100), atomic(0x800)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  const auto& bs = h.b.statistics().master[0];
  EXPECT_EQ(bs.hold_cycles, 28u + 56u);
}

// --- bookkeeping ----------------------------------------------------------------------

TEST(InOrderCore, OpsCounted) {
  FixedOpsStream stream({load(0x100), store(0x104), load(0x108)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().ops, 3u);
}

TEST(InOrderCore, CyclesCountedUntilDone) {
  FixedOpsStream stream({load(0x100)});
  CoreHarness h(stream);
  const Cycle t = h.run_to_done();
  EXPECT_EQ(h.core.stats().cycles, t + 1);  // cycles 0..t inclusive
  // Ticking past completion does not change anything.
  h.kernel.run(100);
  EXPECT_EQ(h.core.stats().cycles, t + 1);
}

TEST(InOrderCore, BusStallCyclesDominateOnMisses) {
  FixedOpsStream stream({load(0x100)});
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_GE(h.core.stats().bus_stall_cycles, 28u);
}

TEST(InOrderCore, RepeatStreamRunsTwice) {
  FixedOpsStream stream({load(0x100)}, /*repeat=*/2);
  CoreHarness h(stream);
  (void)h.run_to_done();
  EXPECT_EQ(h.core.stats().ops, 2u);
  EXPECT_EQ(h.core.stats().l1_hits, 1u);  // second pass hits
}

}  // namespace
}  // namespace cbus::cpu
