// Graph-routed interconnect tests: Topology edge/routing contracts
// (chain, ring, mesh), the golden byte-pin for the legacy chain, bounded
// bridge queues with credit-style backpressure, the platform parsing
// surface (`topology = ring:<n> | mesh:<rows>x<cols>`, `bridge_depth`),
// and campaign determinism (batch x threads, checkpoint, shards) for
// the new topologies.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bus/round_robin.hpp"
#include "bus/segmented.hpp"
#include "bus/topology.hpp"
#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "platform/config_file.hpp"
#include "platform/multicore.hpp"
#include "sim/kernel.hpp"
#include "workloads/eembc_like.hpp"

namespace cbus {
namespace {

using bus::SegmentedConfig;
using bus::SegmentedInterconnect;
using bus::Topology;
using bus::TopologyEdge;
using bus::TopologyKind;

// --- graph model -------------------------------------------------------------

TEST(Topology, ChainEdgesReproduceHistoricalDeliveryOrder) {
  // The legacy SegmentedInterconnect delivered bridges in the order
  // (s -> s+1), (s+1 -> s) per adjacency; chain edges() must match it
  // exactly -- this IS the cycle-exactness contract for `segmented:<n>`.
  const Topology chain = Topology::chain(4);
  const std::vector<TopologyEdge> expected{{0, 1}, {1, 0}, {1, 2},
                                           {2, 1}, {2, 3}, {3, 2}};
  ASSERT_EQ(chain.edges().size(), expected.size());
  for (std::size_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(chain.edges()[e], expected[e]) << "edge " << e;
  }
  EXPECT_EQ(chain.in_degree(0), 1u);
  EXPECT_EQ(chain.in_degree(1), 2u);
  EXPECT_EQ(chain.in_degree(3), 1u);
  EXPECT_EQ(chain.diameter(), 3u);
  EXPECT_EQ(chain.label(), "chain:4");
}

TEST(Topology, RingEdgesAppendWrapLinkLast) {
  // Ring = the chain's edge list plus the wrap adjacency (n-1, 0)
  // appended LAST, forward direction first -- so a chain-shaped prefix
  // of the delivery order is preserved.
  const Topology ring = Topology::ring(4);
  const std::vector<TopologyEdge> expected{{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                           {2, 3}, {3, 2}, {3, 0}, {0, 3}};
  ASSERT_EQ(ring.edges().size(), expected.size());
  for (std::size_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(ring.edges()[e], expected[e]) << "edge " << e;
  }
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(ring.in_degree(s), 2u);
  EXPECT_EQ(ring.label(), "ring:4");
}

TEST(Topology, MeshEdgesEnumerateRowMajorRightThenDown) {
  const Topology mesh = Topology::mesh(2, 2);
  const std::vector<TopologyEdge> expected{{0, 1}, {1, 0}, {0, 2}, {2, 0},
                                           {1, 3}, {3, 1}, {2, 3}, {3, 2}};
  ASSERT_EQ(mesh.edges().size(), expected.size());
  for (std::size_t e = 0; e < expected.size(); ++e) {
    EXPECT_EQ(mesh.edges()[e], expected[e]) << "edge " << e;
  }
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(mesh.in_degree(s), 2u);
  EXPECT_EQ(mesh.label(), "mesh:2x2");
  EXPECT_EQ(Topology::mesh(3, 3).edges().size(), 24u);
}

TEST(Topology, RingRoutesShortestDirectionTieForward) {
  const Topology ring = Topology::ring(6);
  EXPECT_EQ(ring.next_hop(0, 2), 1u);  // forward is shorter
  EXPECT_EQ(ring.next_hop(0, 4), 5u);  // backward is shorter
  EXPECT_EQ(ring.next_hop(0, 3), 1u);  // antipodal tie breaks FORWARD
  EXPECT_EQ(ring.next_hop(4, 1), 5u);  // tie again, forward from 4
  EXPECT_EQ(ring.distance(0, 3), 3u);
  EXPECT_EQ(ring.distance(5, 1), 2u);
  EXPECT_EQ(ring.diameter(), 3u);
  EXPECT_EQ(Topology::ring(5).diameter(), 2u);
}

TEST(Topology, MeshRoutesDimensionOrderedXY) {
  // 3x3, row-major: segment s at (s / 3, s % 3). Column corrected first.
  const Topology mesh = Topology::mesh(3, 3);
  EXPECT_EQ(mesh.next_hop(0, 8), 1u);  // (0,0) -> (2,2): column first
  EXPECT_EQ(mesh.next_hop(1, 8), 2u);  // column still short by one
  EXPECT_EQ(mesh.next_hop(2, 8), 5u);  // column aligned: walk rows
  EXPECT_EQ(mesh.next_hop(6, 0), 3u);  // same column: straight up
  EXPECT_EQ(mesh.next_hop(5, 3), 4u);  // same row: walk left
  EXPECT_EQ(mesh.distance(0, 8), 4u);
  EXPECT_EQ(mesh.distance(4, 4), 0u);
  EXPECT_EQ(mesh.diameter(), 4u);
  EXPECT_EQ(Topology::mesh(1, 4).diameter(), 3u);
}

TEST(Topology, ValidatesShape) {
  EXPECT_THROW((void)Topology::chain(0), std::invalid_argument);
  EXPECT_THROW((void)Topology::ring(2), std::invalid_argument);
  EXPECT_THROW((void)Topology::mesh(1, 1), std::invalid_argument);
  EXPECT_THROW((void)Topology::mesh(0, 3), std::invalid_argument);
  EXPECT_NO_THROW((void)Topology::chain(1));   // degenerate single segment
  EXPECT_NO_THROW((void)Topology::mesh(1, 2));  // 1xN mesh = a chain shape
  EXPECT_EQ(Topology::chain(1).diameter(), 0u);
}

// --- hop timing on the new topologies ---------------------------------------

/// A slave serving every transaction in a fixed number of cycles.
class FixedSlave final : public bus::BusSlave {
 public:
  explicit FixedSlave(Cycle hold) : hold_(hold) {}
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    return hold_;
  }
  void complete_transaction(const bus::BusRequest&, Cycle) override {}

 private:
  Cycle hold_;
};

/// A master issuing scripted (cycle, address) loads, recording
/// completion cycles.
class ScriptedMaster final : public sim::Component, public bus::BusMaster {
 public:
  ScriptedMaster(MasterId id, bus::BusPort& bus,
                 std::vector<std::pair<Cycle, Addr>> script)
      : sim::Component("scripted"), id_(id), bus_(bus),
        script_(std::move(script)) {
    bus_.connect_master(id_, *this);
  }

  void tick(Cycle now) override {
    if (next_ < script_.size() && script_[next_].first <= now &&
        bus_.can_request(id_)) {
      bus::BusRequest req;
      req.master = id_;
      req.addr = script_[next_].second;
      req.kind = MemOpKind::kLoad;
      bus_.request(req, now);
      ++next_;
    }
  }

  void on_grant(const bus::BusRequest&, Cycle, Cycle) override {}
  void on_complete(const bus::BusRequest&, Cycle now) override {
    completions.push_back(now);
  }

  std::vector<Cycle> completions;

 private:
  MasterId id_;
  bus::BusPort& bus_;
  std::vector<std::pair<Cycle, Addr>> script_;
  std::size_t next_ = 0;
};

[[nodiscard]] SegmentedInterconnect::ArbiterFactory rr_factory() {
  return [](std::uint32_t n_local, std::uint32_t) {
    return std::make_unique<bus::RoundRobinArbiter>(n_local);
  };
}

TEST(TopologyTiming, RingWrapLinkCarriesShortestDirectionHop) {
  // On ring:4, segment 0 -> segment 3 is ONE backward hop over the wrap
  // link (a chain would need three forward hops). Same B + L + H = 10
  // completion as the chain's single-hop contract.
  SegmentedConfig cfg;
  cfg.n_masters = 4;
  cfg.topology = Topology::ring(4);
  cfg.bridge_hold = 3;
  cfg.bridge_latency = 2;
  cfg.stripe_log2 = 12;
  EXPECT_EQ(cfg.topology.next_hop(0, 3), 3u);
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  ScriptedMaster remote(0, seg, {{0, 0x3000}});  // routes to segment 3
  ScriptedMaster p1(1, seg, {});
  ScriptedMaster p2(2, seg, {});
  ScriptedMaster p3(3, seg, {});
  sim::Kernel kernel;
  kernel.add(remote);
  kernel.add(p1);
  kernel.add(p2);
  kernel.add(p3);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 60);

  ASSERT_EQ(remote.completions.size(), 1u);
  EXPECT_EQ(remote.completions[0], 10u);  // B=3 + L=2 + H=5
  EXPECT_EQ(seg.bridge_stats().hops, 1u);
  ASSERT_EQ(seg.hop_histogram().size(), 3u);  // ring:4 diameter = 2
  EXPECT_EQ(seg.hop_histogram()[1], 1u);
  // Only the wrap edge (0 -> 3) carried traffic.
  for (std::uint32_t b = 0; b < seg.n_bridges(); ++b) {
    const auto [from, to] = seg.bridge_route(b);
    const bool wrap = from == 0 && to == 3;
    EXPECT_EQ(seg.bridge_queue_depth_max(b), wrap ? 1u : 0u)
        << "bridge " << from << "->" << to;
  }
}

TEST(TopologyTiming, MeshXYRoutesColumnFirstWithExactTiming) {
  // mesh:2x2, segment 0 -> segment 3: XY routing goes 0 -> 1 -> 3
  // (column first), never through segment 2. Two hops:
  // 2*(B + L) + H = 2*5 + 5 = 15.
  SegmentedConfig cfg;
  cfg.n_masters = 4;
  cfg.topology = Topology::mesh(2, 2);
  cfg.bridge_hold = 3;
  cfg.bridge_latency = 2;
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  ScriptedMaster remote(0, seg, {{0, 0x3000}});  // routes to segment 3
  ScriptedMaster p1(1, seg, {});
  ScriptedMaster p2(2, seg, {});
  ScriptedMaster p3(3, seg, {});
  sim::Kernel kernel;
  kernel.add(remote);
  kernel.add(p1);
  kernel.add(p2);
  kernel.add(p3);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 60);

  ASSERT_EQ(remote.completions.size(), 1u);
  EXPECT_EQ(remote.completions[0], 15u);
  EXPECT_EQ(seg.bridge_stats().hops, 2u);
  ASSERT_EQ(seg.hop_histogram().size(), 3u);  // mesh:2x2 diameter = 2
  EXPECT_EQ(seg.hop_histogram()[2], 1u);
  // The transit segment is 1 (column corrected first); segment 2 idle.
  EXPECT_GE(seg.segment_statistics(1).totals().grants, 1u);
  EXPECT_EQ(seg.segment_statistics(2).totals().grants, 0u);
}

// --- bounded bridges and backpressure ---------------------------------------

/// A master streaming `count` loads into one address stripe (sequential
/// addresses), re-issuing `gap` cycles after each completion, recording
/// the completed addresses in order.
class StreamMaster final : public sim::Component, public bus::BusMaster {
 public:
  StreamMaster(MasterId id, bus::BusPort& bus, Addr base, std::size_t count,
               Cycle gap)
      : sim::Component("stream"), id_(id), bus_(bus), base_(base),
        count_(count), gap_(gap) {
    bus_.connect_master(id_, *this);
  }

  void tick(Cycle now) override {
    if (issued_ < count_ && now >= next_issue_ && bus_.can_request(id_)) {
      bus::BusRequest req;
      req.master = id_;
      req.addr = base_ + static_cast<Addr>(issued_) * 4;
      req.kind = MemOpKind::kLoad;
      bus_.request(req, now);
      ++issued_;
    }
  }

  void on_grant(const bus::BusRequest&, Cycle, Cycle) override {}
  void on_complete(const bus::BusRequest& request, Cycle now) override {
    completed.push_back(request.addr);
    next_issue_ = now + gap_;
  }

  std::vector<Addr> completed;

 private:
  MasterId id_;
  bus::BusPort& bus_;
  Addr base_;
  std::size_t count_;
  Cycle gap_;
  std::size_t issued_ = 0;
  Cycle next_issue_ = 0;
};

/// End-of-cycle invariant checker: every bridge queue within the bound.
class QueueBoundChecker final : public sim::Component {
 public:
  QueueBoundChecker(const SegmentedInterconnect& seg, std::size_t bound)
      : sim::Component("checker"), seg_(seg), bound_(bound) {}

  void tick(Cycle now) override {
    for (std::uint32_t b = 0; b < seg_.n_bridges(); ++b) {
      if (seg_.bridge_queue_depth(b) > bound_) {
        violations_.push_back({now, b});
      }
    }
  }

  [[nodiscard]] std::size_t violations() const { return violations_.size(); }

 private:
  const SegmentedInterconnect& seg_;
  std::size_t bound_;
  std::vector<std::pair<Cycle, std::uint32_t>> violations_;
};

struct SaturatedRingResult {
  std::uint64_t total_stalls = 0;
  std::uint64_t completions = 0;
  bool queues_bounded = false;
  bool streams_in_order = false;
};

/// `per_segment` masters on each ring:4 segment, all hammering the NEXT
/// segment's stripe: the home cores compete for the same forward
/// bridge, so a depth-1 bound stalls whoever loses the race -- while
/// every queued entry only ever needs the downstream slave (never
/// another bridge), so the saturated ring still drains. Antipodal
/// (2-hop) saturation instead closes the documented credit cycle and
/// deadlocks; that caveat is exactly why the conservation scenario
/// drives single-hop traffic.
[[nodiscard]] SaturatedRingResult run_saturated_ring(std::uint32_t depth,
                                                     Cycle gap,
                                                     std::size_t count,
                                                     Cycle horizon,
                                                     std::uint32_t per_segment =
                                                         2) {
  const std::uint32_t n_masters = 4 * per_segment;
  SegmentedConfig cfg;
  cfg.n_masters = n_masters;
  cfg.topology = Topology::ring(4);
  cfg.bridge_depth = depth;
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  std::vector<std::unique_ptr<StreamMaster>> masters;
  for (MasterId m = 0; m < n_masters; ++m) {
    const Addr stripe = static_cast<Addr>((m / per_segment + 1) % 4) << 12;
    masters.push_back(
        std::make_unique<StreamMaster>(m, seg, stripe, count, gap));
  }
  const std::size_t bound =
      depth == 0 ? std::numeric_limits<std::size_t>::max() : depth;
  QueueBoundChecker checker(seg, bound);

  sim::Kernel kernel;
  for (auto& m : masters) kernel.add(*m);
  kernel.add(seg);
  kernel.add(checker);  // after seg: observes settled end-of-cycle state
  kernel.run_until(
      [&]() {
        for (const auto& m : masters) {
          if (m->completed.size() < count) return false;
        }
        return true;
      },
      horizon);

  SaturatedRingResult result;
  result.queues_bounded = checker.violations() == 0;
  result.streams_in_order = true;
  for (MasterId m = 0; m < n_masters; ++m) {
    result.completions += masters[m]->completed.size();
    const Addr stripe = static_cast<Addr>((m / per_segment + 1) % 4) << 12;
    for (std::size_t i = 0; i < masters[m]->completed.size(); ++i) {
      if (masters[m]->completed[i] != stripe + static_cast<Addr>(i) * 4) {
        result.streams_in_order = false;
      }
    }
  }
  for (std::uint32_t s = 0; s < seg.n_segments(); ++s) {
    result.total_stalls += seg.backpressure_stalls(s);
  }
  return result;
}

TEST(Backpressure, SaturatedRingConservesBoundedQueuesWithoutDropOrReorder) {
  // The conservation contract at bridge_depth = 1: no queue ever holds
  // more than one entry, nothing is dropped (every issued load
  // completes), and each master's per-stripe stream completes in issue
  // order. The bound forces real stalling: withheld master-cycles are
  // visible in the backpressure counters.
  const SaturatedRingResult bounded =
      run_saturated_ring(/*depth=*/1, /*gap=*/0, /*count=*/40,
                         /*horizon=*/40'000);
  EXPECT_TRUE(bounded.queues_bounded);
  EXPECT_TRUE(bounded.streams_in_order);
  EXPECT_EQ(bounded.completions, 8u * 40u);  // nothing dropped or stuck
  EXPECT_GT(bounded.total_stalls, 0u);
}

TEST(Backpressure, UnboundedBridgesNeverStall) {
  const SaturatedRingResult unbounded =
      run_saturated_ring(/*depth=*/0, /*gap=*/0, /*count=*/40,
                         /*horizon=*/40'000);
  EXPECT_EQ(unbounded.completions, 8u * 40u);
  EXPECT_TRUE(unbounded.streams_in_order);
  EXPECT_EQ(unbounded.total_stalls, 0u);
}

TEST(Backpressure, StallsAreMonotoneInOfferedLoad) {
  // Fixed horizon, open-ended streams: offered load scales with the
  // number of streams contending for each forward bridge, and the
  // withheld master-cycles must not decrease with it. (Load is NOT
  // swept via the inter-request gap: a closed-loop stream with one
  // outstanding access self-synchronizes into a near-collision-free
  // pipeline at gap 0, so gap-vs-stalls is genuinely non-monotone.)
  const auto run = [](std::uint32_t per_segment) {
    return run_saturated_ring(/*depth=*/1, /*gap=*/0, /*count=*/100'000,
                              /*horizon=*/20'000, per_segment)
        .total_stalls;
  };
  const std::uint64_t heavy = run(3);
  const std::uint64_t medium = run(2);
  const std::uint64_t light = run(1);
  EXPECT_GE(heavy, medium);
  EXPECT_GE(medium, light);
  EXPECT_GT(heavy, light);
  // One stream per bridge never competes for its reservation: the
  // bound is invisible and the counters must say so.
  EXPECT_EQ(light, 0u);
}

// --- config-file surface -----------------------------------------------------

TEST(TopologyConfigFile, RingAndMeshFormsParse) {
  std::istringstream chain_in("cores = 4\ntopology = chain:3\n");
  const platform::PlatformConfig chain = platform::parse_config(chain_in);
  EXPECT_EQ(chain.topology.kind, TopologyKind::kChain);
  EXPECT_EQ(chain.topology.segments, 3u);

  std::istringstream ring_in("cores = 4\ntopology = ring:4\n");
  const platform::PlatformConfig ring = platform::parse_config(ring_in);
  EXPECT_EQ(ring.topology.kind, TopologyKind::kRing);
  EXPECT_EQ(ring.topology.segments, 4u);
  EXPECT_EQ(ring.topology.graph(), Topology::ring(4));

  std::istringstream mesh_in("cores = 6\ntopology = mesh:2x3\n");
  const platform::PlatformConfig mesh = platform::parse_config(mesh_in);
  EXPECT_EQ(mesh.topology.kind, TopologyKind::kMesh);
  EXPECT_EQ(mesh.topology.rows, 2u);
  EXPECT_EQ(mesh.topology.cols, 3u);
  EXPECT_EQ(mesh.topology.segments, 6u);
  EXPECT_EQ(mesh.topology.graph(), Topology::mesh(2, 3));
}

TEST(TopologyConfigFile, RejectsMalformedTopologies) {
  for (const char* value :
       {"ring:2", "mesh:1x1", "mesh:2", "mesh:0x3", "chain:", "torus:4"}) {
    std::istringstream in(std::string("cores = 4\ntopology = ") + value +
                          "\n");
    EXPECT_THROW((void)platform::parse_config(in), std::invalid_argument)
        << value;
  }
  // The unknown-value error enumerates the registry, mirroring the
  // controller-parse UX (and points at --list topologies).
  std::istringstream unknown("cores = 4\ntopology = torus:4\n");
  try {
    (void)platform::parse_config(unknown);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown topology 'torus:4'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("mesh:<rows>x<cols>"), std::string::npos) << what;
    EXPECT_NE(what.find("--list topologies"), std::string::npos) << what;
  }
}

TEST(TopologyConfigFile, BridgeDepthParsesAndRoundTrips) {
  std::istringstream unbounded(
      "cores = 4\ntopology = ring:4\nbridge_depth = unbounded\n");
  EXPECT_EQ(platform::parse_config(unbounded).topology.bridge_depth, 0u);
  std::istringstream zero("cores = 4\nbridge_depth = 0\n");
  EXPECT_THROW((void)platform::parse_config(zero), std::invalid_argument);

  std::istringstream bounded(
      "cores = 6\ntopology = mesh:2x3\nbridge_depth = 2\n");
  const platform::PlatformConfig cfg = platform::parse_config(bounded);
  EXPECT_EQ(cfg.topology.bridge_depth, 2u);
  EXPECT_EQ(cfg.segmented_config().bridge_depth, 2u);

  // write_config -> parse_config round trip preserves the graph and the
  // bound; the chain keeps its legacy `segmented:<n>` spelling.
  std::ostringstream out;
  platform::write_config(out, cfg);
  EXPECT_NE(out.str().find("topology = mesh:2x3"), std::string::npos);
  EXPECT_NE(out.str().find("bridge_depth = 2"), std::string::npos);
  std::istringstream back_in(out.str());
  const platform::PlatformConfig back = platform::parse_config(back_in);
  EXPECT_EQ(back.topology.kind, TopologyKind::kMesh);
  EXPECT_EQ(back.topology.rows, 2u);
  EXPECT_EQ(back.topology.cols, 3u);
  EXPECT_EQ(back.topology.bridge_depth, 2u);

  platform::PlatformConfig legacy;
  legacy.topology.segments = 4;
  std::ostringstream legacy_out;
  platform::write_config(legacy_out, legacy);
  EXPECT_NE(legacy_out.str().find("topology = segmented:4"),
            std::string::npos);
  EXPECT_NE(legacy_out.str().find("bridge_depth = unbounded"),
            std::string::npos);
}

TEST(TopologyPlatform, RejectsFewerCoresThanSegments) {
  // home_segment() block distribution leaves segments empty when
  // n_masters < n_segments; the config must refuse instead of building
  // an interconnect with coreless segments.
  std::istringstream in("cores = 2\ntopology = chain:4\n");
  try {
    (void)platform::parse_config(in);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n_masters >= n_segments"),
              std::string::npos)
        << e.what();
  }
  std::istringstream ok("cores = 4\ntopology = chain:4\n");
  EXPECT_NO_THROW((void)platform::parse_config(ok));
}

TEST(TopologyPlatform, CreditSlotsCountDegreeDependentBridgePorts) {
  const auto slots = [](const std::string& text) {
    std::istringstream in(text);
    return platform::parse_config(in).credit_slots();
  };
  EXPECT_EQ(slots("cores = 4\ntopology = single\n"), 4u);
  EXPECT_EQ(slots("cores = 4\ntopology = segmented:4\n"), 4u + 6u);
  EXPECT_EQ(slots("cores = 4\ntopology = ring:4\n"), 4u + 8u);
  EXPECT_EQ(slots("cores = 9\ntopology = mesh:3x3\n"), 9u + 24u);
}

TEST(TopologyPlatform, MulticoreRunsOnBoundedMesh) {
  std::istringstream in(
      "cores = 9\nsetup = hcba\nmode = wcet\ntopology = mesh:3x3\n"
      "bridge_depth = 2\n");
  const platform::PlatformConfig cfg = platform::parse_config(in);
  auto tua = workloads::make_eembc("canrdr");
  tua->reset(7);
  platform::Multicore machine(cfg, 7, *tua);
  ASSERT_NE(machine.segmented(), nullptr);
  EXPECT_EQ(machine.segmented()->topology(), Topology::mesh(3, 3));
  const platform::RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);

  // The record carries the new seg.* keys at their natural widths: one
  // element per directed edge for queue shape, per segment for stalls,
  // diameter + 1 buckets for the hop histogram.
  EXPECT_EQ(r.record.at("seg.occupancy").size(), 9u);
  EXPECT_EQ(r.record.at("seg.queue_depth_max").size(), 24u);
  EXPECT_EQ(r.record.at("seg.queue_depth_mean").size(), 24u);
  EXPECT_EQ(r.record.at("seg.backpressure_stalls").size(), 9u);
  EXPECT_EQ(r.record.at("seg.hop_histogram").size(), 5u);
}

// --- golden pin: the legacy chain is byte-frozen -----------------------------

[[nodiscard]] exp::ExperimentSpec parse_exp(const std::string& text) {
  std::istringstream in(text);
  return exp::parse_experiment(in);
}

[[nodiscard]] std::string csv_of(const exp::ExperimentSpec& spec,
                                 const exp::ExperimentResult& result) {
  std::ostringstream out;
  exp::make_sink(exp::SinkKind::kCsv)->write(spec, result.jobs, out);
  return out.str();
}

[[nodiscard]] std::string json_of(const exp::ExperimentSpec& spec,
                                  const exp::ExperimentResult& result) {
  std::ostringstream out;
  exp::make_sink(exp::SinkKind::kJson)->write(spec, result.jobs, out);
  return out.str();
}

TEST(TopologyGolden, ChainCampaignBytesAndSpecHashArePinned) {
  // Captured from the pre-refactor linear-chain implementation (PR 5-8
  // behavior). The graph-routed core must reproduce every byte of this
  // campaign AND its checkpoint spec hash -- `topology = segmented:<n>`
  // is frozen. If this test breaks, the refactor changed observable
  // chain behavior; do not re-bless without understanding why.
  const std::string spec_text =
      "name = chain-golden\n"
      "kernel = canrdr\n"
      "sweep scenario = iso con\n"
      "topology = segmented:4\n"
      "setup = hcba\n"
      "cores = 4\n"
      "runs = 3\n"
      "metrics = tua.cycles,bus.occupancy_share,seg.occupancy,seg.grants,"
      "seg.remote_fraction,seg.bridge_hops,seg.mean_bridge_wait,"
      "fair.jain_occupancy,credit.budget\n";
  const char* golden_csv =
      "job,kernel,scenario,seed,run,cycles,tua.cycles,"
      "bus.occupancy_share[0],bus.occupancy_share[1],bus.occupancy_share[2],"
      "bus.occupancy_share[3],seg.occupancy[0],seg.occupancy[1],"
      "seg.occupancy[2],seg.occupancy[3],seg.grants[0],seg.grants[1],"
      "seg.grants[2],seg.grants[3],seg.remote_fraction,seg.bridge_hops,"
      "seg.mean_bridge_wait,fair.jain_occupancy,credit.budget[0],"
      "credit.budget[1],credit.budget[2],credit.budget[3]\n"
      "0,canrdr,iso,14592251008053203194,0,416137,416137,"
      "0.009486636644574636,0,0,0,0.030336090431539536,"
      "0.0076104561467590075,0,0,1936,339,0,0,0.17510330578512398,339,2,"
      "0.25,56,56,56,56\n"
      "0,canrdr,iso,14592251008053203194,1,416323,416323,"
      "0.008908926701319165,0,0,0,0.029109539685437304,"
      "0.006526167119839356,0,0,1835,249,0,0,0.13569482288828338,249,2,"
      "0.25,56,56,56,56\n"
      "0,canrdr,iso,14592251008053203194,2,417518,417518,"
      "0.00991332130992841,0,0,0,0.032547021812181005,"
      "0.007106263427532639,0,0,2129,299,0,0,0.14044152184124,299,2,"
      "0.25,56,56,56,56\n"
      "1,canrdr,con,17069869281103512697,0,418803,418803,"
      "0.009297905464131192,0.025104822303511905,0.025104822303511905,"
      "0.025104822303511905,0.029892264639306214,0.10771864643126618,"
      "0.10041928921404762,0.10041928921404762,1915,1068,751,751,"
      "0.07605566218809981,317,2,0.9052229071824117,56,56,56,56\n"
      "1,canrdr,con,17069869281103512697,1,417307,417307,"
      "0.009672711762055844,0.025999980829507222,0.025999980829507222,"
      "0.025999980829507222,0.031748732351165085,0.11094203801508717,"
      "0.10399992331802889,0.10399992331802889,2061,1060,775,775,"
      "0.06497948016415869,285,2,0.9057604117993755,56,56,56,56\n"
      "1,canrdr,con,17069869281103512697,2,417969,417969,"
      "0.00896057133287078,0.024886953609110703,0.024886953609110703,"
      "0.024886953609110703,0.02894705361628825,0.10644304615163767,"
      "0.09954781443644281,0.09954781443644281,1831,1025,743,743,"
      "0.06945812807881774,282,2,0.9018572700565683,56,56,56,56\n";

  const exp::ExperimentSpec spec = parse_exp(spec_text);
  EXPECT_EQ(exp::spec_hash(spec), 0xaa688b8a28722622ull);
  const auto result = exp::run_experiment(spec, /*threads=*/2);
  ASSERT_EQ(result.failed_jobs(), 0u);
  EXPECT_EQ(csv_of(spec, result), golden_csv);
}

// --- campaign determinism on the new topologies ------------------------------

/// Spec text for a congested co-run: every non-TuA core is a streaming
/// contender with `gap` compute cycles between accesses. Streams sweep an
/// 8 MiB footprint so every access misses the private L2 and crosses the
/// fabric; the EEMBC `con` scenario alone is almost entirely absorbed by
/// the L2s (~3% remote traffic) and never engages backpressure.
[[nodiscard]] std::string corun_spec(const std::string& body, int gap = 2) {
  std::string text = "scenario = corun\nkernel = canrdr\n";
  for (int c = 1; c < 9; ++c) {
    text += "core" + std::to_string(c) + " = stream:" + std::to_string(gap) +
            "\n";
  }
  return text + body;
}

/// A congested bounded-mesh campaign: the canrdr TuA plus eight streaming
/// contenders on mesh:3x3 with depth-1 bridges. max_cycles is a deadlock
/// backstop only — runs finish at ~430k cycles, far below the cap, and an
/// unfinished run would surface as a missing sample, not a hang.
[[nodiscard]] exp::ExperimentSpec mesh_exp() {
  return parse_exp(corun_spec(
      "name = topo-det\n"
      "setup = hcba\n"
      "cores = 9\n"
      "topology = mesh:3x3\n"
      "bridge_depth = 1\n"
      "runs = 4\n"
      "max_cycles = 3000000\n"
      "summary = off\n"
      "metrics = all\n"));
}

TEST(TopologyExperiment, BatchedIsByteIdenticalToSerialOnRingAndMesh) {
  // The acceptance matrix for the new topologies: batch {1, 8} x
  // threads {1, 4} must reproduce the serial bytes, bounded bridges and
  // every metric included.
  // bridge_depth 2, not 1: a depth-2 ring:4 cannot close the bounded-ring
  // credit cycle with only 9 masters (12 committed slots would be needed),
  // so the spec is deadlock-free on both swept topologies by construction.
  const std::string text = corun_spec(
      "sweep topology = ring:4 mesh:3x3\n"
      "bridge_depth = 2\n"
      "setup = hcba\n"
      "cores = 9\n"
      "runs = 3\n"
      "max_cycles = 3000000\n"
      "metrics = all\n");
  const exp::ExperimentSpec serial_spec = parse_exp(text);
  const auto serial = exp::run_experiment(serial_spec, /*threads=*/1);
  ASSERT_EQ(serial.jobs.size(), 2u);
  EXPECT_EQ(serial.failed_jobs(), 0u);
  for (const auto& job : serial.jobs) {
    ASSERT_EQ(job.campaign.samples().size(), 3u);
  }
  const std::string expected_csv = csv_of(serial_spec, serial);
  const std::string expected_json = json_of(serial_spec, serial);
  EXPECT_NE(expected_csv.find("ring:4"), std::string::npos);
  EXPECT_NE(expected_csv.find("mesh:3x3"), std::string::npos);

  for (const std::uint32_t batch : {1u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      exp::ExperimentSpec spec = parse_exp(text);
      spec.batch = batch;
      const auto result = exp::run_experiment(spec, threads);
      EXPECT_EQ(csv_of(spec, result), expected_csv)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(json_of(spec, result), expected_json)
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

/// A scratch file path with any stale leftover removed.
[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(TopologyExperiment, CheckpointResumeReproducesMeshBytes) {
  exp::ExperimentSpec spec = mesh_exp();
  spec.retain_raw = false;
  spec.batch = 2;
  exp::RunOptions options;
  options.threads_override = 1;
  options.checkpoint_path = temp_path("topo-full.ckpt");
  const auto uninterrupted = exp::run_experiment(spec, options);
  ASSERT_EQ(uninterrupted.failed_jobs(), 0u);
  const std::string expected = json_of(spec, uninterrupted);

  const exp::LoadedCheckpoint full =
      exp::load_checkpoint(options.checkpoint_path);
  ASSERT_GE(full.slices.size(), 2u);
  exp::RunOptions resume;
  resume.threads_override = 2;
  resume.checkpoint_path = temp_path("topo-partial.ckpt");
  {
    exp::CheckpointWriter writer = exp::CheckpointWriter::create(
        resume.checkpoint_path, exp::make_meta(spec, 0, 1));
    writer.append(full.slices[0]);
  }
  const auto resumed = exp::run_experiment(spec, resume);
  EXPECT_EQ(json_of(spec, resumed), expected);
}

TEST(TopologyExperiment, ShardsMergeToSingleProcessMeshBytes) {
  exp::ExperimentSpec spec = mesh_exp();
  spec.retain_raw = false;
  spec.batch = 2;
  exp::RunOptions single;
  single.threads_override = 2;
  const std::string expected =
      json_of(spec, exp::run_experiment(spec, single));

  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 2; ++i) {
    exp::RunOptions options;
    options.threads_override = 2;
    options.shard_index = i;
    options.shard_count = 2;
    options.checkpoint_path =
        temp_path("topo-shard-" + std::to_string(i) + ".ckpt");
    paths.push_back(options.checkpoint_path);
    const auto shard = exp::run_experiment(spec, options);
    ASSERT_EQ(shard.failed_jobs(), 0u);
  }
  const exp::LoadedCheckpoint merged = exp::merge_checkpoints(spec, paths);
  const auto result = exp::finalize_from_slices(spec, merged.slices);
  EXPECT_EQ(json_of(spec, result), expected);
}

/// Total withheld master-cycles across every segment of a job.
[[nodiscard]] double job_stall_sum(const exp::JobResult& job) {
  const auto& agg = job.campaign.aggregate;
  double sum = 0.0;
  for (std::size_t s = 0; s < agg.width("seg.backpressure_stalls"); ++s) {
    sum += agg.element_sum("seg.backpressure_stalls", s);
  }
  return sum;
}

TEST(TopologyExperiment, MeshCongestionStallsRespondToBridgeDepth) {
  // The mesh_congestion.exp contract in miniature: unbounded bridges
  // never stall; a depth-1 bound under the same congested load does.
  const std::string text = corun_spec(
      "topology = mesh:3x3\n"
      "sweep bridge_depth = unbounded 1\n"
      "setup = hcba\n"
      "cores = 9\n"
      "runs = 2\n"
      "max_cycles = 3000000\n"
      "metrics = seg.backpressure_stalls,seg.queue_depth_max\n");
  const exp::ExperimentSpec spec = parse_exp(text);
  const auto result = exp::run_experiment(spec, 2);
  ASSERT_EQ(result.jobs.size(), 2u);
  ASSERT_EQ(result.failed_jobs(), 0u);
  for (const auto& job : result.jobs) {
    ASSERT_EQ(job.campaign.samples().size(), 2u);
  }
  EXPECT_EQ(job_stall_sum(result.jobs[0]), 0.0);  // unbounded: never engages
  EXPECT_GT(job_stall_sum(result.jobs[1]), 0.0);  // depth 1: real stalls

  // And the depth-1 job's high-water queue depth respects the bound.
  const auto& bounded = result.jobs[1].campaign.aggregate;
  for (std::size_t b = 0; b < bounded.width("seg.queue_depth_max"); ++b) {
    EXPECT_LE(bounded.element_stats("seg.queue_depth_max", b).max(), 1.0)
        << "bridge " << b;
  }
}

TEST(TopologyExperiment, MeshCongestionStallsAreMonotoneInOfferedLoad) {
  // Widening every contender's inter-access gap lowers the offered load;
  // the depth-1 stall totals must fall with it. (Strided streams sweep
  // all stripes, so unlike the closed-loop single-stripe harness above
  // they never self-synchronize into a collision-free pipeline.)
  const auto stalls_at = [](int gap) {
    const exp::ExperimentSpec spec = parse_exp(corun_spec(
        "topology = mesh:3x3\n"
        "bridge_depth = 1\n"
        "setup = hcba\n"
        "cores = 9\n"
        "runs = 1\n"
        "max_cycles = 3000000\n"
        "metrics = seg.backpressure_stalls\n",
        gap));
    const auto result = exp::run_experiment(spec, 1);
    EXPECT_EQ(result.failed_jobs(), 0u);
    EXPECT_EQ(result.jobs[0].campaign.samples().size(), 1u);
    return job_stall_sum(result.jobs[0]);
  };
  const double heavy = stalls_at(0);
  const double medium = stalls_at(16);
  const double light = stalls_at(64);
  EXPECT_GE(heavy, medium);
  EXPECT_GE(medium, light);
  EXPECT_GT(heavy, light);
  EXPECT_GT(light, 0.0);  // lighter, but still congested
}

// --- observability: per-edge bridge tracks -----------------------------------

[[nodiscard]] std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TopologyObs, MeshTraceHasOneBridgeTrackPerDirectedEdge) {
  exp::ExperimentSpec spec = parse_exp(
      "name = topo-obs\n"
      "scenario = con\n"
      "kernel = matrix\n"
      "setup = hcba\n"
      "cores = 4\n"
      "runs = 1\n"
      "summary = off\n");
  spec.set_platform_key("topology", "mesh:2x2");
  spec.trace_path = temp_path("topo_mesh_trace.json");
  const auto result = exp::run_experiment(spec, 1u);
  ASSERT_EQ(result.failed_jobs(), 0u);

  const std::string trace = file_bytes(spec.trace_path);
  ASSERT_FALSE(trace.empty());
  const Topology mesh = Topology::mesh(2, 2);
  for (const TopologyEdge& e : mesh.edges()) {
    const std::string name = "\"bridge s" + std::to_string(e.from) + "->s" +
                             std::to_string(e.to) + "\"";
    EXPECT_NE(trace.find(name), std::string::npos) << name;
  }
  // No chain-shaped leftovers: a 2x2 mesh has no 1<->2 adjacency.
  EXPECT_EQ(trace.find("\"bridge s1->s2\""), std::string::npos);
  std::remove(spec.trace_path.c_str());
}

}  // namespace
}  // namespace cbus
