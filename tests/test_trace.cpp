// Trace I/O tests: capture, round-trip through CSV, replay equivalence,
// malformed-input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "sim/kernel.hpp"
#include "trace/bus_trace.hpp"
#include "trace/op_trace.hpp"
#include "workloads/eembc_like.hpp"

namespace cbus::trace {
namespace {

TEST(Trace, CaptureDrainsStream) {
  auto stream = workloads::make_eembc("canrdr");
  stream->reset(1);
  const auto ops = capture(*stream, 100);
  EXPECT_EQ(ops.size(), 100u);
}

TEST(Trace, CaptureStopsAtStreamEnd) {
  workloads::FixedOpsStream s({cpu::MemOp{MemOpKind::kLoad, 1, 0}});
  const auto ops = capture(s, 100);
  EXPECT_EQ(ops.size(), 1u);
}

TEST(Trace, RoundTripThroughText) {
  std::vector<cpu::MemOp> ops{
      {MemOpKind::kLoad, 0xDEADBEE0, 3},
      {MemOpKind::kStore, 0x00000004, 0},
      {MemOpKind::kAtomic, 0xFFFFFFFC, 77},
  };
  std::stringstream buffer;
  write_ops(buffer, ops);
  const auto back = read_ops(buffer);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(back[i].kind, ops[i].kind);
    EXPECT_EQ(back[i].addr, ops[i].addr);
    EXPECT_EQ(back[i].compute_before, ops[i].compute_before);
  }
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer("# comment\n\nload,10,5\n");
  const auto ops = read_ops(buffer);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].addr, 0x10u);
  EXPECT_EQ(ops[0].compute_before, 5u);
}

TEST(Trace, MalformedLineThrows) {
  std::stringstream missing_field("load,10\n");
  EXPECT_THROW((void)read_ops(missing_field), std::invalid_argument);
  std::stringstream bad_kind("jump,10,5\n");
  EXPECT_THROW((void)read_ops(bad_kind), std::invalid_argument);
}

TEST(Trace, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cbus_trace_test.csv";
  auto stream = workloads::make_eembc("tblook");
  stream->reset(9);
  const auto ops = capture(*stream, 500);
  save_ops(path, ops);
  const auto back = load_ops(path);
  ASSERT_EQ(back.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(back[i].addr, ops[i].addr);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_ops("/nonexistent/path/trace.csv"),
               std::invalid_argument);
}

TEST(Trace, ReplayMatchesOriginal) {
  auto stream = workloads::make_eembc("canrdr");
  stream->reset(4);
  const auto ops = capture(*stream, 200);
  auto replayed = replay(ops);
  for (const auto& expected : ops) {
    const auto got = replayed->next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->addr, expected.addr);
    EXPECT_EQ(got->kind, expected.kind);
    EXPECT_EQ(got->compute_before, expected.compute_before);
  }
  EXPECT_FALSE(replayed->next().has_value());
}

TEST(Trace, ReplayWithRepeat) {
  std::vector<cpu::MemOp> ops{{MemOpKind::kLoad, 0x10, 0}};
  auto replayed = replay(ops, 3);
  int count = 0;
  while (replayed->next().has_value()) ++count;
  EXPECT_EQ(count, 3);
}

// --- bus transaction tracing ------------------------------------------------------------

class FixedHoldSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    return 5;
  }
};

struct TraceRig {
  TraceRig() : arbiter(2), b(bus::BusConfig{2, true}, arbiter, slave) {
    b.set_observer(&recorder);
    kernel.add(b);
  }
  FixedHoldSlave slave;
  bus::RoundRobinArbiter arbiter;
  bus::NonSplitBus b;
  BusTraceRecorder recorder;
  cbus::sim::Kernel kernel;
};

TEST(BusTrace, RecordsLifecycle) {
  TraceRig rig;
  bus::BusRequest req;
  req.master = 0;
  req.addr = 0xAB0;
  rig.b.request(req, 0);
  rig.kernel.run(10);
  ASSERT_EQ(rig.recorder.transactions().size(), 1u);
  const BusTransaction& txn = rig.recorder.transactions()[0];
  EXPECT_EQ(txn.master, 0u);
  EXPECT_EQ(txn.addr, 0xAB0u);
  EXPECT_EQ(txn.issued_at, 0u);
  EXPECT_EQ(txn.started_at, 1u);
  EXPECT_EQ(txn.hold, 5u);
  EXPECT_EQ(txn.completed_at, 5u);
  EXPECT_EQ(txn.wait(), 1u);
  EXPECT_EQ(txn.turnaround(), 6u);
}

TEST(BusTrace, WaitStatsPerMaster) {
  TraceRig rig;
  bus::BusRequest a;
  a.master = 0;
  bus::BusRequest b2;
  b2.master = 1;
  rig.b.request(a, 0);
  rig.b.request(b2, 0);
  rig.kernel.run(20);
  EXPECT_EQ(rig.recorder.wait_stats(0).count(), 1u);
  EXPECT_EQ(rig.recorder.wait_stats(1).count(), 1u);
  // The loser waited for the winner's full transfer.
  EXPECT_GT(rig.recorder.wait_stats(1).mean(),
            rig.recorder.wait_stats(0).mean());
}

TEST(BusTrace, OccupancySumsHolds) {
  TraceRig rig;
  for (int i = 0; i < 3; ++i) {
    bus::BusRequest req;
    req.master = 0;
    rig.b.request(req, rig.kernel.now());
    rig.kernel.run(10);
  }
  const auto occ = rig.recorder.occupancy_by_master(2);
  EXPECT_EQ(occ[0], 15u);
  EXPECT_EQ(occ[1], 0u);
}

TEST(BusTrace, CapacityDropsExcess) {
  TraceRig rig;
  rig.b.set_observer(nullptr);
  BusTraceRecorder small(2);
  rig.b.set_observer(&small);
  for (int i = 0; i < 4; ++i) {
    bus::BusRequest req;
    req.master = 0;
    rig.b.request(req, rig.kernel.now());
    rig.kernel.run(10);
  }
  EXPECT_EQ(small.transactions().size(), 2u);
  EXPECT_EQ(small.dropped(), 2u);
}

TEST(BusTrace, CsvRoundTripShape) {
  TraceRig rig;
  bus::BusRequest req;
  req.master = 1;
  req.kind = MemOpKind::kStore;
  rig.b.request(req, 0);
  rig.kernel.run(10);
  std::stringstream out;
  write_bus_trace(out, rig.recorder.transactions());
  const std::string text = out.str();
  EXPECT_NE(text.find("store"), std::string::npos);
  EXPECT_NE(text.find("# cbus bus trace"), std::string::npos);
}

TEST(BusTrace, ClearResets) {
  TraceRig rig;
  bus::BusRequest req;
  req.master = 0;
  rig.b.request(req, 0);
  rig.kernel.run(10);
  rig.recorder.clear();
  EXPECT_TRUE(rig.recorder.transactions().empty());
  EXPECT_EQ(rig.recorder.dropped(), 0u);
}

}  // namespace
}  // namespace cbus::trace
