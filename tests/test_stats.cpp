// Unit tests for cbus_stats: Welford statistics, quantiles, histograms,
// fairness indices.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/exact_sum.hpp"
#include "stats/fairness.hpp"
#include "stats/histogram.hpp"
#include "stats/log_histogram.hpp"
#include "stats/summary.hpp"

namespace cbus::stats {
namespace {

// --- OnlineStats ---------------------------------------------------------------

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesConcatenation) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10 + i;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(OnlineStats, Ci95ShrinksWithN) {
  OnlineStats small;
  OnlineStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(OnlineStats, CoefficientOfVariation) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  // mean 2, sd sqrt(2): cv = 0.7071...
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 2.0, 1e-12);
}

// --- quantile -------------------------------------------------------------------

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW((void)quantile(v, 1.1), std::invalid_argument);
}

// --- autocorrelation -------------------------------------------------------------

TEST(Autocorrelation, IidNoiseNearZero) {
  std::vector<double> v;
  std::uint64_t state = 88172645463325252ULL;
  for (int i = 0; i < 5000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v.push_back(static_cast<double>(state % 1000));
  }
  EXPECT_NEAR(autocorrelation(v, 1), 0.0, 0.05);
}

TEST(Autocorrelation, AlternatingSequenceNegative) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(v, 1), -0.9);
}

TEST(Autocorrelation, TrendPositive) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(autocorrelation(v, 1), 0.9);
}

// --- Histogram -------------------------------------------------------------------

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 5);  // [0,10) [10,20) ... [40,50), overflow beyond
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(49);
  h.add(50);
  h.add(1000);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(Histogram, QuantileUpperBound) {
  Histogram h(10, 10);
  for (int i = 0; i < 90; ++i) h.add(5);   // bucket 0
  for (int i = 0; i < 10; ++i) h.add(95);  // bucket 9
  EXPECT_EQ(h.quantile_upper_bound(0.5), 10u);
  EXPECT_EQ(h.quantile_upper_bound(0.99), 100u);
}

TEST(Histogram, ResetClears) {
  Histogram h(10, 2);
  h.add(1);
  h.add(100);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(5, 0), std::invalid_argument);
}

// --- fairness --------------------------------------------------------------------

TEST(Fairness, JainEqualSharesIsOne) {
  const std::vector<double> shares{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(jain_index(shares), 1.0);
}

TEST(Fairness, JainSingleHogIsOneOverN) {
  const std::vector<double> shares{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(shares), 0.25);
}

TEST(Fairness, JainPaperExample) {
  // The paper's §I example: 5-cycle vs 45-cycle alternating requests give
  // 10% vs 90% of bandwidth -> Jain = (1)^2 / (2 * (0.01 + 0.81)) = 0.6097...
  const std::vector<double> shares{0.1, 0.9};
  EXPECT_NEAR(jain_index(shares), 1.0 / (2 * 0.82), 1e-12);
}

TEST(Fairness, JainEmptyAndZeros) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Fairness, JainGoldenValues) {
  // n masters, one holding everything -> 1/n; k of n equal -> k/n.
  const std::vector<double> hog3{7.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(hog3), 1.0 / 3.0);
  const std::vector<double> two_of_four{3.0, 3.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(two_of_four), 0.5);
  // Scale invariance: indices depend on proportions only.
  const std::vector<double> scaled{10.0, 90.0};
  const std::vector<double> shares{0.1, 0.9};
  EXPECT_DOUBLE_EQ(jain_index(scaled), jain_index(shares));
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{42.0}), 1.0);
}

TEST(Fairness, JainRejectsNegativeShares) {
  const std::vector<double> bad{0.5, -0.1};
  EXPECT_THROW((void)jain_index(bad), std::invalid_argument);
}

TEST(Fairness, MaxMinRatio) {
  const std::vector<double> shares{0.1, 0.4};
  EXPECT_DOUBLE_EQ(max_min_ratio(shares), 4.0);
  const std::vector<double> equal{0.5, 0.5};
  EXPECT_DOUBLE_EQ(max_min_ratio(equal), 1.0);
}

TEST(Fairness, MaxMinRatioDegenerateSpansAreVacuouslyFair) {
  // Empty, single-element and all-zero spans: nobody is being treated
  // unfairly relative to anybody else.
  EXPECT_DOUBLE_EQ(max_min_ratio({}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{5.0}), 1.0);
  EXPECT_DOUBLE_EQ(max_min_ratio(std::vector<double>{0.0}), 1.0);
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(max_min_ratio(zeros), 1.0);
}

TEST(Fairness, MaxMinRatioInfinityContract) {
  // A starved master alongside a served one is infinitely unfair --
  // regardless of where the zero sits or how many zeros there are.
  const std::vector<double> starved{0.0, 0.4};
  EXPECT_TRUE(std::isinf(max_min_ratio(starved)));
  const std::vector<double> tail_zero{0.4, 0.2, 0.0};
  EXPECT_TRUE(std::isinf(max_min_ratio(tail_zero)));
  EXPECT_GT(max_min_ratio(tail_zero), 0.0);  // +infinity, not -infinity
}

TEST(Fairness, MaxMinRatioRejectsNegativeShares) {
  const std::vector<double> bad{-1.0, 2.0};
  EXPECT_THROW((void)max_min_ratio(bad), std::invalid_argument);
  const std::vector<double> single_bad{-1.0};
  EXPECT_THROW((void)max_min_ratio(single_bad), std::invalid_argument);
}

// --- ExactSum ---------------------------------------------------------------

[[nodiscard]] std::uint64_t bits_of(double x) {
  return std::bit_cast<std::uint64_t>(x);
}

TEST(ExactSum, SumsExactlyWhereNaiveAdditionRounds) {
  // 1 + 2^-60 repeated: naive left-to-right addition loses every tiny
  // addend; the superaccumulator keeps all of them.
  ExactSum sum;
  sum.add(1.0);
  const double tiny = std::ldexp(1.0, -60);
  for (int i = 0; i < 1 << 12; ++i) sum.add(tiny);
  const double expected = 1.0 + std::ldexp(1.0, -48);  // 2^12 * 2^-60
  EXPECT_EQ(bits_of(sum.to_double()), bits_of(expected));
}

TEST(ExactSum, OrderAndPartitionInvariantToTheLastBit) {
  // The property the whole campaign determinism story leans on: any
  // ordering and any partition of the addends gives identical limbs.
  const std::vector<double> values{1e308,  -1e308, 3.5,     5e-324,
                                   -2.25,  1e30,   -1e-30,  0.25,
                                   -0.0,   1e155,  -1e155,  7.125};
  ExactSum forward;
  for (const double v : values) forward.add(v);
  ExactSum backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    backward.add(*it);
  }
  EXPECT_EQ(forward, backward);

  ExactSum odd, even;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 2 != 0 ? odd : even).add(values[i]);
  }
  even.merge(odd);
  EXPECT_EQ(even, forward);
  EXPECT_EQ(bits_of(even.to_double()), bits_of(forward.to_double()));
}

TEST(ExactSum, CancellationIsExact) {
  ExactSum sum;
  sum.add(1e308);
  sum.add(3.0);
  sum.add(-1e308);
  EXPECT_EQ(bits_of(sum.to_double()), bits_of(3.0));

  ExactSum zero;
  zero.add(0.1);
  zero.add(-0.1);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(bits_of(zero.to_double()), bits_of(0.0));  // +0, not -0
}

TEST(ExactSum, OverflowPastDoubleRangeRoundsToInfinity) {
  ExactSum sum;
  const double huge = std::numeric_limits<double>::max();
  sum.add(huge);
  sum.add(huge);
  EXPECT_TRUE(std::isinf(sum.to_double()));
  EXPECT_GT(sum.to_double(), 0.0);
  sum.add(-huge);
  EXPECT_EQ(bits_of(sum.to_double()), bits_of(huge));
}

TEST(ExactSum, RoundsToNearestEven) {
  // 1 + 2^-53 is exactly half-way between 1 and the next double: ties
  // go to even (stay at 1). Adding one more ulp of the tail breaks the
  // tie upward.
  ExactSum half_way;
  half_way.add(1.0);
  half_way.add(std::ldexp(1.0, -53));
  EXPECT_EQ(bits_of(half_way.to_double()), bits_of(1.0));

  ExactSum above;
  above.add(1.0);
  above.add(std::ldexp(1.0, -53));
  above.add(std::ldexp(1.0, -80));  // sticky bit
  EXPECT_EQ(bits_of(above.to_double()),
            bits_of(1.0 + std::ldexp(1.0, -52)));
}

TEST(ExactSum, LimbsRoundTrip) {
  ExactSum sum;
  sum.add(-123.456);
  sum.add(5e-324);
  const ExactSum back = ExactSum::from_limbs(sum.limbs());
  EXPECT_EQ(back, sum);
  EXPECT_EQ(bits_of(back.to_double()), bits_of(sum.to_double()));
}

// --- LogHistogram -----------------------------------------------------------

TEST(LogHistogram, MergeIsExactAndOrderFree) {
  std::vector<double> values;
  for (int i = 1; i <= 500; ++i) values.push_back(i * 0.37);
  LogHistogram whole;
  for (const double v : values) whole.add(v);
  LogHistogram a, b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : b).add(values[i]);
  }
  b.merge(a);
  EXPECT_EQ(b, whole);
  EXPECT_EQ(b.count(), 500u);
}

TEST(LogHistogram, QuantileWithinRelativeResolution) {
  LogHistogram sketch;
  std::vector<double> values;
  for (int i = 1; i <= 999; ++i) {
    values.push_back(static_cast<double>(i));
    sketch.add(static_cast<double>(i));
  }
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double exact = quantile(values, q);
    // Error budget: half a bucket (~0.2% relative) plus one sample
    // spacing (the sketch does not interpolate between ranks).
    EXPECT_NEAR(sketch.quantile(q), exact, exact * 0.005 + 1.0) << q;
  }
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0),
                   LogHistogram::representative(
                       LogHistogram::bucket_key(1.0)));
}

TEST(LogHistogram, BucketKeysOrderLikeValues) {
  const std::vector<double> ascending{-1e6, -2.5,  -1e-5, 0.0,
                                      1e-9, 0.125, 3.7,   1e20};
  for (std::size_t i = 1; i < ascending.size(); ++i) {
    EXPECT_LT(LogHistogram::bucket_key(ascending[i - 1]),
              LogHistogram::bucket_key(ascending[i]))
        << ascending[i];
  }
  // Signed zero shares the zero bucket; representatives invert keys.
  EXPECT_EQ(LogHistogram::bucket_key(-0.0), LogHistogram::bucket_key(0.0));
  EXPECT_DOUBLE_EQ(LogHistogram::representative(0), 0.0);
  const std::int64_t key = LogHistogram::bucket_key(1234.5);
  EXPECT_NEAR(LogHistogram::representative(key), 1234.5, 1234.5 * 0.003);
  EXPECT_NEAR(LogHistogram::representative(-key), -1234.5, 1234.5 * 0.003);
}

TEST(LogHistogram, FromBucketsValidates) {
  LogHistogram sketch;
  sketch.add(1.0);
  sketch.add(2.0);
  const auto buckets = sketch.buckets();
  const LogHistogram back = LogHistogram::from_buckets(
      std::vector<LogHistogram::Bucket>(buckets.begin(), buckets.end()));
  EXPECT_EQ(back, sketch);

  EXPECT_THROW((void)LogHistogram::from_buckets(
                   {{.key = 5, .count = 1}, {.key = 5, .count = 1}}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)LogHistogram::from_buckets({{.key = 2, .count = 0}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace cbus::stats
