// Split-transaction bus tests: phase timing, off-bus service overlap,
// atomic non-split holds, CBA filtering on the address phase, and the
// paper's SIII-C argument (split buses homogenize request sizes except
// for atomics).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bus/round_robin.hpp"
#include "bus/split_bus.hpp"
#include "core/credit_filter.hpp"
#include "sim/kernel.hpp"

namespace cbus::bus {
namespace {

/// Slave with programmable split responses.
class FakeSplitSlave final : public SplitSlave {
 public:
  SplitResponse begin_split_transaction(const BusRequest& request,
                                        Cycle now) override {
    begins.push_back({request.master, now});
    if (request.kind == MemOpKind::kAtomic) {
      return SplitResponse{56, 0, true};
    }
    return SplitResponse{latency, 4, false};
  }

  Cycle latency = 23;  // miss-like: 1 addr + 23 service + 4 beats = 28
  std::vector<std::pair<MasterId, Cycle>> begins;
};

class RecordingMaster final : public BusMaster {
 public:
  void on_grant(const BusRequest&, Cycle now, Cycle hold) override {
    grants.push_back({now, hold});
  }
  void on_complete(const BusRequest&, Cycle now) override {
    completions.push_back(now);
  }
  std::vector<std::pair<Cycle, Cycle>> grants;
  std::vector<Cycle> completions;
};

struct SplitHarness {
  SplitHarness() : arbiter(4), bus(BusConfig{4, true}, arbiter, slave) {
    for (MasterId m = 0; m < 4; ++m) bus.connect_master(m, masters[m]);
    kernel.add(bus);
  }

  BusRequest req(MasterId m, MemOpKind kind = MemOpKind::kLoad) {
    BusRequest r;
    r.master = m;
    r.kind = kind;
    r.addr = 0x100u * (m + 1);
    return r;
  }

  FakeSplitSlave slave;
  RoundRobinArbiter arbiter;
  SplitBus bus;
  RecordingMaster masters[4];
  sim::Kernel kernel;
};

TEST(SplitBus, SingleTransactionTiming) {
  SplitHarness h;
  h.bus.request(h.req(0), 0);
  h.kernel.run(40);
  // Address phase at cycle 1 (1-cycle arbitration), service 23 cycles
  // off-bus (ready at 2+23=25), data phase 4 beats, completion.
  ASSERT_EQ(h.slave.begins.size(), 1u);
  ASSERT_EQ(h.masters[0].completions.size(), 1u);
  // End-to-end matches the non-split 28-cycle transaction within the
  // 1-cycle re-arbitration grain.
  EXPECT_GE(h.masters[0].completions[0], 28u);
  EXPECT_LE(h.masters[0].completions[0], 30u);
}

TEST(SplitBus, BusReleasedDuringService) {
  SplitHarness h;
  h.bus.request(h.req(0), 0);
  h.kernel.run(10);  // address phase done; service in progress
  EXPECT_EQ(h.bus.holder(), kNoMaster) << "bus must be free mid-service";
  EXPECT_TRUE(h.bus.is_outstanding(0));
  EXPECT_FALSE(h.bus.can_request(0));
}

TEST(SplitBus, ServicesOverlapAcrossMasters) {
  // Two 28-cycle transactions on the non-split bus need 56+ cycles; on
  // the split bus their memory service overlaps.
  SplitHarness h;
  h.bus.request(h.req(0), 0);
  h.bus.request(h.req(1), 0);
  h.kernel.run(45);
  ASSERT_EQ(h.masters[0].completions.size(), 1u);
  ASSERT_EQ(h.masters[1].completions.size(), 1u);
  EXPECT_LT(h.masters[1].completions[0], 40u)
      << "second transaction must overlap the first's service";
}

TEST(SplitBus, AtomicHoldsBusNonSplit) {
  SplitHarness h;
  h.bus.request(h.req(0, MemOpKind::kAtomic), 0);
  h.bus.request(h.req(1), 0);
  h.kernel.run(100);
  // The atomic occupies the bus for its full 56 cycles; master 1's
  // address phase cannot start before it ends.
  ASSERT_EQ(h.slave.begins.size(), 2u);
  EXPECT_GE(h.slave.begins[1].second, 56u);
  const auto& s = h.bus.statistics();
  EXPECT_EQ(s.master[0].hold_cycles, 56u);
}

TEST(SplitBus, OccupancyIsHomogeneousForNormalRequests) {
  // The SIII-C argument: on a split bus, hit (5) and miss (28) requests
  // occupy the bus the same 1 + 4 cycles; only service time differs.
  SplitHarness h;
  h.slave.latency = 0;  // hit-like
  h.bus.request(h.req(0), 0);
  h.kernel.run(20);
  const Cycle hit_occ = h.bus.statistics().master[0].hold_cycles;

  SplitHarness h2;
  h2.slave.latency = 23;  // miss-like
  h2.bus.request(h2.req(0), 0);
  h2.kernel.run(40);
  const Cycle miss_occ = h2.bus.statistics().master[0].hold_cycles;

  EXPECT_EQ(hit_occ, 5u);
  EXPECT_EQ(miss_occ, 5u) << "equal occupancy regardless of service time";
}

TEST(SplitBus, DataPhasePriorityOverNewAddresses) {
  SplitHarness h;
  h.slave.latency = 5;
  h.bus.request(h.req(0), 0);
  h.kernel.run(4);  // master 0's address phase done, service running
  h.bus.request(h.req(1), 4);
  h.bus.request(h.req(2), 4);
  h.kernel.run(40);
  // All complete despite the competition.
  EXPECT_EQ(h.masters[0].completions.size(), 1u);
  EXPECT_EQ(h.masters[1].completions.size(), 1u);
  EXPECT_EQ(h.masters[2].completions.size(), 1u);
}

TEST(SplitBus, OneOutstandingPerMaster) {
  SplitHarness h;
  h.bus.request(h.req(0), 0);
  h.kernel.run(5);
  EXPECT_THROW(h.bus.request(h.req(0), 5), std::invalid_argument);
}

TEST(SplitBus, CbaFilterAppliesToAddressPhase) {
  SplitHarness h;
  core::CreditFilter filter(core::CbaConfig::homogeneous(4, 56));
  filter.state().set_budget(0, 0);  // master 0 ineligible
  h.bus.set_filter(&filter);
  h.bus.request(h.req(0), 0);
  h.bus.request(h.req(1), 0);
  h.kernel.run(40);
  // Master 1 completes; master 0 is still gated (budget refills at
  // +1/cycle towards 224).
  EXPECT_EQ(h.masters[1].completions.size(), 1u);
  EXPECT_EQ(h.masters[0].completions.size(), 0u);
  h.kernel.run(300);  // budget saturates, master 0 proceeds
  EXPECT_EQ(h.masters[0].completions.size(), 1u);
}

TEST(SplitBus, ThroughputBeatsNonSplitUnderLoad) {
  // Four masters with miss-like requests, re-raised on completion: the
  // split bus pipelines the memory latencies.
  SplitHarness h;
  struct Rerequester final : BusMaster {
    SplitBus* bus = nullptr;
    MasterId id = 0;
    std::uint64_t done = 0;
    void on_grant(const BusRequest&, Cycle, Cycle) override {}
    void on_complete(const BusRequest&, Cycle) override { ++done; }
  } rerequesters[4];
  for (MasterId m = 0; m < 4; ++m) {
    rerequesters[m].bus = &h.bus;
    rerequesters[m].id = m;
    h.bus.connect_master(m, rerequesters[m]);
  }
  for (Cycle t = 0; t < 2000; ++t) {
    for (MasterId m = 0; m < 4; ++m) {
      if (h.bus.can_request(m)) h.bus.request(h.req(m), h.kernel.now());
    }
    h.kernel.step();
  }
  std::uint64_t total = 0;
  for (const auto& r : rerequesters) total += r.done;
  // Non-split: 2000 / 28 = 71 transactions max; split pipelines services:
  // bound is ~2000/5 = 400 occupancy-limited, service-limited ~4 x
  // (2000/28) = 285. Expect well above the non-split ceiling.
  EXPECT_GT(total, 150u);
}

TEST(SplitBus, StatisticsAccounting) {
  SplitHarness h;
  h.bus.request(h.req(0), 0);
  h.kernel.run(40);
  const auto& s = h.bus.statistics();
  EXPECT_EQ(s.master[0].requests, 1u);
  EXPECT_EQ(s.master[0].grants, 1u);
  EXPECT_EQ(s.master[0].completions, 1u);
  EXPECT_EQ(s.master[0].hold_cycles, 5u);  // 1 addr + 4 data
  EXPECT_EQ(s.busy_cycles + s.idle_cycles, s.total_cycles);
}

}  // namespace
}  // namespace cbus::bus
