// Tests for the memory timing model and the partitioned L2 bus slave:
// the published 5/28/56-cycle transaction classes, partition isolation,
// atomic bypass, dirty write-back accounting.
#include <gtest/gtest.h>

#include "bus/request.hpp"
#include "mem/memory_timings.hpp"
#include "mem/partitioned_l2.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::mem {
namespace {

cache::CacheConfig tiny_partition() {
  return cache::CacheConfig{.size_bytes = 1024,
                            .line_bytes = 32,
                            .ways = 2,
                            .placement = cache::PlacementKind::kModulo,
                            .replacement = cache::ReplacementKind::kLru};
}

bus::BusRequest req_of(MasterId m, Addr addr,
                       MemOpKind kind = MemOpKind::kLoad) {
  bus::BusRequest r;
  r.master = m;
  r.addr = addr;
  r.kind = kind;
  return r;
}

// --- MemoryTimings -------------------------------------------------------------

TEST(MemoryTimings, PaperLatencyTable) {
  const MemoryTimings t;
  EXPECT_EQ(t.hold_for(AccessOutcome::kHit), 5u);
  EXPECT_EQ(t.hold_for(AccessOutcome::kMissClean), 28u);
  EXPECT_EQ(t.hold_for(AccessOutcome::kMissDirty), 56u);
  EXPECT_EQ(t.hold_for(AccessOutcome::kUncached), 56u);
  EXPECT_EQ(t.max_latency(), 56u);
}

TEST(MemoryTimings, ValidationRejectsInverted) {
  MemoryTimings t;
  t.l2_hit = 30;
  t.mem_access = 20;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// --- PartitionedL2: transaction classes -------------------------------------------

TEST(PartitionedL2, ReadHitIs5Cycles) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 28u);  // cold miss
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 5u);   // now a hit
  EXPECT_EQ(l2.stats(0).hits, 1u);
  EXPECT_EQ(l2.stats(0).misses_clean, 1u);
}

TEST(PartitionedL2, CleanMissIs28Cycles) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 28u);
  EXPECT_EQ(l2.stats(0).memory_accesses, 1u);
}

TEST(PartitionedL2, DirtyEvictionIs56Cycles) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  // Fill set 0 of the 2-way partition with two STORES (dirty lines):
  // lines 0, 16 map to set 0 under modulo with 16 sets.
  (void)l2.begin_transaction(req_of(0, 0, MemOpKind::kStore), 0);
  (void)l2.begin_transaction(req_of(0, 16 * 32, MemOpKind::kStore), 0);
  // A third line in set 0 evicts a dirty victim: write-back + fetch = 56.
  EXPECT_EQ(l2.begin_transaction(req_of(0, 32 * 32), 0), 56u);
  EXPECT_EQ(l2.stats(0).misses_dirty, 1u);
  EXPECT_EQ(l2.stats(0).memory_accesses, 2u + 2u);  // 2 fills + wb + fetch
}

TEST(PartitionedL2, StoreMissAllocatesDirty) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100, MemOpKind::kStore), 0),
            28u);  // write-allocate fetch
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100, MemOpKind::kStore), 0),
            5u);  // write hit
}

TEST(PartitionedL2, AtomicAlwaysTwoMemoryAccesses) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100, MemOpKind::kAtomic), 0),
            56u);
  // Atomics bypass the cache: the line is NOT resident afterwards.
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 28u);
  EXPECT_EQ(l2.stats(0).atomics, 1u);
}

TEST(PartitionedL2, HoldsWithinPublishedRange) {
  // Property: every possible transaction takes between 5 and 56 cycles
  // (the paper's published bounds and the MaxL upper bound).
  rng::RandBank bank(9);
  PartitionedL2 l2(2, tiny_partition(), MemoryTimings{}, bank);
  std::uint64_t state = 777;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1;
    const Addr addr = static_cast<Addr>(state % 8192) * 4;
    const auto kind = static_cast<MemOpKind>(state % 3);
    const Cycle hold = l2.begin_transaction(req_of(0, addr, kind), 0);
    ASSERT_GE(hold, 5u);
    ASSERT_LE(hold, 56u);
  }
}

// --- partition isolation -------------------------------------------------------------

TEST(PartitionedL2, PartitionsAreIndependent) {
  rng::RandBank bank(1);
  PartitionedL2 l2(4, tiny_partition(), MemoryTimings{}, bank);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);
  // Same address from another master: its own partition, so a cold miss.
  EXPECT_EQ(l2.begin_transaction(req_of(1, 0x100), 0), 28u);
  // And master 0 still hits.
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 5u);
}

TEST(PartitionedL2, MassiveTrafficFromOneMasterNeverEvictsAnother) {
  rng::RandBank bank(2);
  PartitionedL2 l2(2, tiny_partition(), MemoryTimings{}, bank);
  (void)l2.begin_transaction(req_of(1, 0x500), 0);  // master 1 resident line
  for (Addr a = 0; a < 64; ++a) {
    (void)l2.begin_transaction(req_of(0, a * 32), 0);  // thrash partition 0
  }
  EXPECT_EQ(l2.begin_transaction(req_of(1, 0x500), 0), 5u)
      << "partitioning must isolate storage interference";
}

TEST(PartitionedL2, ResetPartitionClearsOnlyThatPartition) {
  rng::RandBank bank(3);
  PartitionedL2 l2(2, tiny_partition(), MemoryTimings{}, bank);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);
  (void)l2.begin_transaction(req_of(1, 0x100), 0);
  l2.reset_partition(0, 123);
  EXPECT_EQ(l2.begin_transaction(req_of(0, 0x100), 0), 28u);  // cleared
  EXPECT_EQ(l2.begin_transaction(req_of(1, 0x100), 0), 5u);   // untouched
}

// --- classify (read-only preview) -----------------------------------------------------

TEST(PartitionedL2, ClassifyDoesNotMutate) {
  rng::RandBank bank(4);
  PartitionedL2 l2(2, tiny_partition(), MemoryTimings{}, bank);
  EXPECT_EQ(l2.classify(req_of(0, 0x100)), AccessOutcome::kMissClean);
  EXPECT_EQ(l2.classify(req_of(0, 0x100)), AccessOutcome::kMissClean);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);
  EXPECT_EQ(l2.classify(req_of(0, 0x100)), AccessOutcome::kHit);
  EXPECT_EQ(l2.classify(req_of(0, 0x100, MemOpKind::kAtomic)),
            AccessOutcome::kUncached);
}

TEST(PartitionedL2, StatsPerMaster) {
  rng::RandBank bank(5);
  PartitionedL2 l2(2, tiny_partition(), MemoryTimings{}, bank);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);
  EXPECT_EQ(l2.stats(0).transactions, 2u);
  EXPECT_EQ(l2.stats(1).transactions, 0u);
  EXPECT_THROW((void)l2.stats(9), std::invalid_argument);
}

// --- DRAM bank model -------------------------------------------------------------

TEST(Dram, RowHitFasterThanRowMiss) {
  DramModel dram(DramConfig{});
  const Cycle first = dram.access(0x1000);   // opens the row
  const Cycle second = dram.access(0x1004);  // same row
  EXPECT_EQ(first, 28u);
  EXPECT_EQ(second, 20u);
  EXPECT_EQ(dram.stats().row_hits, 1u);
  EXPECT_EQ(dram.stats().row_misses, 1u);
}

TEST(Dram, DifferentRowSameBankCloses) {
  DramConfig cfg;
  DramModel dram(cfg);
  (void)dram.access(0);  // row 0, bank 0
  // Same bank, different row: rows interleave across banks, so row index
  // must differ by `banks` to land on bank 0 again.
  const Addr same_bank_other_row = cfg.row_bytes * cfg.banks;
  EXPECT_EQ(dram.access(same_bank_other_row), cfg.row_miss);
}

TEST(Dram, BankInterleavingKeepsNeighbouringRowsOpen) {
  DramConfig cfg;
  DramModel dram(cfg);
  // Touch 4 consecutive rows (4 different banks), then revisit them all:
  // every revisit is a row hit.
  for (std::uint32_t r = 0; r < cfg.banks; ++r) {
    (void)dram.access(r * cfg.row_bytes);
  }
  for (std::uint32_t r = 0; r < cfg.banks; ++r) {
    EXPECT_EQ(dram.access(r * cfg.row_bytes + 64), cfg.row_hit);
  }
}

TEST(Dram, WorstCaseBoundsMaxL) {
  DramModel dram(DramConfig{});
  EXPECT_EQ(dram.worst_case(), 28u);
  std::uint64_t state = 1;
  for (int i = 0; i < 10'000; ++i) {
    state = state * 6364136223846793005ULL + 1;
    const Cycle latency = dram.access(static_cast<Addr>(state));
    ASSERT_LE(latency, dram.worst_case());
    ASSERT_GE(latency, DramConfig{}.row_hit);
  }
}

TEST(Dram, ResetClosesRows) {
  DramModel dram(DramConfig{});
  (void)dram.access(0x1000);
  dram.reset();
  EXPECT_EQ(dram.access(0x1000), 28u);  // row closed again
  EXPECT_EQ(dram.stats().accesses, 1u);
}

TEST(Dram, ConfigValidation) {
  DramConfig bad;
  bad.banks = 3;  // not a power of two
  EXPECT_THROW(DramModel{bad}, std::invalid_argument);
  bad = DramConfig{};
  bad.row_hit = 30;
  bad.row_miss = 20;
  EXPECT_THROW(DramModel{bad}, std::invalid_argument);
}

TEST(PartitionedL2WithDram, StreamingGetsRowHits) {
  rng::RandBank bank(6);
  PartitionedL2 l2(1, tiny_partition(), MemoryTimings{}, bank, DramConfig{});
  ASSERT_NE(l2.dram(), nullptr);
  // Sequential lines in one row: first miss opens the row (28), later
  // line fetches from the same row cost 20.
  const Cycle first = l2.begin_transaction(req_of(0, 0x0), 0);
  const Cycle second = l2.begin_transaction(req_of(0, 0x20), 0);
  EXPECT_EQ(first, 28u);
  EXPECT_EQ(second, 20u);
}

TEST(PartitionedL2WithDram, HoldsStayWithinMaxL) {
  rng::RandBank bank(7);
  PartitionedL2 l2(1, tiny_partition(), MemoryTimings{}, bank, DramConfig{});
  std::uint64_t state = 99;
  for (int i = 0; i < 3000; ++i) {
    state = state * 6364136223846793005ULL + 1;
    const Addr addr = static_cast<Addr>(state % (1u << 20)) & ~3u;
    const auto kind = static_cast<MemOpKind>(state % 3);
    const Cycle hold = l2.begin_transaction(req_of(0, addr, kind), 0);
    ASSERT_LE(hold, 56u) << "MaxL must still bound every transaction";
    ASSERT_GE(hold, 5u);
  }
}

TEST(PartitionedL2WithDram, RejectsBankModelExceedingFlatLatency) {
  rng::RandBank bank(8);
  DramConfig cfg;
  cfg.row_miss = 40;  // > mem_access = 28: MaxL would be stale
  EXPECT_THROW(
      PartitionedL2(1, tiny_partition(), MemoryTimings{}, bank, cfg),
      std::invalid_argument);
}

// --- split-protocol service through the real L2 -------------------------------------

TEST(PartitionedL2Split, HitResponse) {
  rng::RandBank bank(9);
  PartitionedL2 l2(1, tiny_partition(), MemoryTimings{}, bank);
  (void)l2.begin_transaction(req_of(0, 0x100), 0);  // warm the line
  const bus::SplitResponse r =
      l2.begin_split_transaction(req_of(0, 0x100), 0);
  EXPECT_FALSE(r.atomic_hold);
  // addr(1) + latency + beats == non-split hit hold (5).
  EXPECT_EQ(1 + r.latency + r.data_beats, 5u);
}

TEST(PartitionedL2Split, MissResponse) {
  rng::RandBank bank(10);
  PartitionedL2 l2(1, tiny_partition(), MemoryTimings{}, bank);
  const bus::SplitResponse r =
      l2.begin_split_transaction(req_of(0, 0x100), 0);
  EXPECT_EQ(1 + r.latency + r.data_beats, 28u);
}

TEST(PartitionedL2Split, AtomicResponseHoldsFullDuration) {
  rng::RandBank bank(11);
  PartitionedL2 l2(1, tiny_partition(), MemoryTimings{}, bank);
  const bus::SplitResponse r =
      l2.begin_split_transaction(req_of(0, 0x100, MemOpKind::kAtomic), 0);
  EXPECT_TRUE(r.atomic_hold);
  EXPECT_EQ(r.latency, 56u);
}

}  // namespace
}  // namespace cbus::mem
