// Unit tests for cbus_common: vocabulary types, contracts, rational rates,
// saturating counters (the primitive under the paper's BUDGi registers).
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/contracts.hpp"
#include "common/rational_rate.hpp"
#include "common/saturating_counter.hpp"
#include "common/types.hpp"

namespace cbus {
namespace {

// --- contracts -------------------------------------------------------------

TEST(Contracts, ExpectsThrowsInvalidArgument) {
  EXPECT_THROW(CBUS_EXPECTS(false), std::invalid_argument);
  EXPECT_NO_THROW(CBUS_EXPECTS(true));
}

TEST(Contracts, ExpectsMsgCarriesMessage) {
  try {
    CBUS_EXPECTS_MSG(false, "the reason");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
  }
}

TEST(Contracts, AssertThrowsLogicError) {
  EXPECT_THROW(CBUS_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(CBUS_ASSERT(true));
}

// --- enum printers ----------------------------------------------------------

TEST(Types, MemOpKindNames) {
  EXPECT_EQ(to_string(MemOpKind::kLoad), "load");
  EXPECT_EQ(to_string(MemOpKind::kStore), "store");
  EXPECT_EQ(to_string(MemOpKind::kAtomic), "atomic");
}

TEST(Types, AccessOutcomeNames) {
  EXPECT_EQ(to_string(AccessOutcome::kHit), "hit");
  EXPECT_EQ(to_string(AccessOutcome::kMissClean), "miss-clean");
  EXPECT_EQ(to_string(AccessOutcome::kMissDirty), "miss-dirty");
  EXPECT_EQ(to_string(AccessOutcome::kUncached), "uncached");
}

TEST(Types, PlatformModeNames) {
  EXPECT_EQ(to_string(PlatformMode::kOperation), "operation");
  EXPECT_EQ(to_string(PlatformMode::kWcetEstimation), "wcet-estimation");
}

// --- RationalRate ------------------------------------------------------------

TEST(RationalRate, ReducesToLowestTerms) {
  const RationalRate r(2, 8);
  EXPECT_EQ(r.num(), 1u);
  EXPECT_EQ(r.den(), 4u);
}

TEST(RationalRate, ZeroNumeratorIsZero) {
  const RationalRate r(0, 7);
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.den(), 1u);  // reduced
}

TEST(RationalRate, RejectsZeroDenominator) {
  EXPECT_THROW(RationalRate(1, 0), std::invalid_argument);
}

TEST(RationalRate, AsDouble) {
  EXPECT_DOUBLE_EQ(RationalRate(1, 4).as_double(), 0.25);
  EXPECT_DOUBLE_EQ(RationalRate(1, 2).as_double(), 0.5);
}

TEST(RationalRate, EqualityAfterReduction) {
  EXPECT_EQ(RationalRate(2, 4), RationalRate(1, 2));
  EXPECT_NE(RationalRate(1, 2), RationalRate(1, 3));
}

TEST(RationalRate, CommonScaleIsLcmOfDenominators) {
  const RationalRate rates[] = {{1, 2}, {1, 6}, {1, 6}, {1, 6}};
  EXPECT_EQ(common_scale(rates), 6u);
}

TEST(RationalRate, CommonScaleHomogeneous) {
  const RationalRate rates[] = {{1, 4}, {1, 4}, {1, 4}, {1, 4}};
  EXPECT_EQ(common_scale(rates), 4u);
}

TEST(RationalRate, ScaledIncrementsPaperHcba) {
  // The paper's H-CBA: TuA recovers 1/2, others 1/6 -> units of 1/6 cycle:
  // increments {3, 1, 1, 1} and 6 units charged per occupied cycle.
  const RationalRate rates[] = {{1, 2}, {1, 6}, {1, 6}, {1, 6}};
  const auto inc = scaled_increments(rates);
  ASSERT_EQ(inc.size(), 4u);
  EXPECT_EQ(inc[0], 3u);
  EXPECT_EQ(inc[1], 1u);
  EXPECT_EQ(inc[2], 1u);
  EXPECT_EQ(inc[3], 1u);
}

TEST(RationalRate, ScaledIncrementsMixedDenominators) {
  const RationalRate rates[] = {{1, 3}, {1, 4}};
  const auto inc = scaled_increments(rates);  // scale 12
  EXPECT_EQ(inc[0], 4u);
  EXPECT_EQ(inc[1], 3u);
}

// --- SaturatingCounter -------------------------------------------------------

TEST(SaturatingCounter, StartsAtInitial) {
  const SaturatingCounter c(228, 100);
  EXPECT_EQ(c.value(), 100u);
  EXPECT_EQ(c.cap(), 228u);
  EXPECT_FALSE(c.saturated());
}

TEST(SaturatingCounter, RejectsInitialAboveCap) {
  EXPECT_THROW(SaturatingCounter(10, 11), std::invalid_argument);
}

TEST(SaturatingCounter, AddSaturatesAtCap) {
  SaturatingCounter c(228, 220);
  EXPECT_EQ(c.add(100), 228u);
  EXPECT_TRUE(c.saturated());
}

TEST(SaturatingCounter, AddExactToCap) {
  SaturatingCounter c(228, 227);
  EXPECT_EQ(c.add(1), 228u);
  EXPECT_TRUE(c.saturated());
}

TEST(SaturatingCounter, SpendDecrements) {
  SaturatingCounter c(228, 228);
  EXPECT_EQ(c.spend(4), 224u);
}

TEST(SaturatingCounter, SpendBelowZeroIsInvariantViolation) {
  SaturatingCounter c(228, 3);
  EXPECT_THROW(c.spend(4), std::logic_error);
}

TEST(SaturatingCounter, TickCombinesRecoverAndCharge) {
  // Table I: every cycle +1, while using the bus -4 => net -3.
  SaturatingCounter c(228, 228);
  EXPECT_EQ(c.tick(1, 4), 225u);
  EXPECT_EQ(c.tick(1, 4), 222u);
}

TEST(SaturatingCounter, TickAtCapWithoutChargeStaysAtCap) {
  SaturatingCounter c(228, 228);
  EXPECT_EQ(c.tick(1, 0), 228u);
}

TEST(SaturatingCounter, ResetWithinCap) {
  SaturatingCounter c(228, 228);
  c.reset(0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_THROW(c.reset(229), std::invalid_argument);
}

// Property: a 56-cycle transaction paid at net -3/cycle from saturation
// recovers to saturation after exactly 3*56 idle cycles (the 1/N
// bandwidth guarantee of Eq. 1, scaled).
TEST(SaturatingCounter, PaperRecoveryArithmetic) {
  SaturatingCounter c(224, 224);
  for (int i = 0; i < 56; ++i) c.tick(1, 4);
  EXPECT_EQ(c.value(), 224u - 3u * 56u);
  int idle = 0;
  while (!c.saturated()) {
    c.tick(1, 0);
    ++idle;
  }
  EXPECT_EQ(idle, 3 * 56);
}

// Parameterized sweep: recovery time after a hold of H cycles at scale N
// equals (N-1)*H for any H, N -- the core fairness identity.
class RecoveryIdentity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RecoveryIdentity, HoldThenRecover) {
  const auto [n, hold] = GetParam();
  const auto cap = static_cast<std::uint64_t>(n) * 64;  // MaxL=64
  SaturatingCounter c(cap, cap);
  for (int i = 0; i < hold; ++i) c.tick(1, static_cast<std::uint64_t>(n));
  int idle = 0;
  while (!c.saturated()) {
    c.tick(1, 0);
    ++idle;
  }
  EXPECT_EQ(idle, (n - 1) * hold);
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndHolds, RecoveryIdentity,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(1, 5, 28, 56, 64)));

}  // namespace
}  // namespace cbus
