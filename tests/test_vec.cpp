// cbus::vec kernel semantics and the scalar-vs-SIMD identity contract.
//
// Two layers:
//  * kernel units -- every vec entry point checked against an
//    independent re-implementation of the Table-I formula, on random
//    inputs, under both the configured ISA and force_scalar(true); the
//    two dispatches must agree to the bit, including the padding lanes
//    (which must come back untouched) and the tail mask of eq_mask_row.
//  * campaign batteries -- the batch credit engine against the classic
//    lane-major path on full max-contention campaigns, byte-identical
//    per-run records across batch {1,3,8} x threads {1,4}, tail
//    stripes (runs % batch != 0), lane counts below/above the vector
//    width, and a wide (8-core) machine.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/cba_config.hpp"
#include "core/credit_state.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "vec/vec.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;

/// Deterministic 64-bit generator for fuzz inputs (tests must not draw
/// from global randomness).
struct Mix {
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  /// A value in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  /// A lane mask honouring the padding contract: bits >= n are zero.
  std::uint64_t mask(std::uint32_t n) {
    return n < 64 ? next() & ((std::uint64_t{1} << n) - 1) : next();
  }
};

/// Independent reference for the Table-I per-lane step (vec.hpp's
/// documented semantics, written the naive way).
std::uint64_t reference_tick(std::uint64_t value, std::uint64_t inc,
                             std::uint64_t charge, std::uint64_t cap,
                             bool* clamped) {
  const std::uint64_t up = value + inc;
  if (up < charge) {
    *clamped = true;
    return 0;
  }
  *clamped = false;
  return std::min(up - charge, cap);
}

/// RAII guard: force the scalar dispatch for one scope.
struct ScalarGuard {
  ScalarGuard() { vec::force_scalar(true); }
  ~ScalarGuard() { vec::force_scalar(false); }
};

/// RAII guard: pin the engine on/off decision for one scope.
struct EngineGuard {
  bool saved;
  explicit EngineGuard(bool on) : saved(vec::engine_enabled()) {
    vec::set_engine_enabled(on);
  }
  ~EngineGuard() { vec::set_engine_enabled(saved); }
};

constexpr std::size_t kPad = vec::kLaneAlign;

/// A padded row of `n` live lanes plus poison padding whose survival the
/// tests assert (kernels may read and blend-store the padding, but its
/// value must never change).
struct PaddedRow {
  std::vector<std::uint64_t> data;
  explicit PaddedRow(std::uint32_t n, Mix& mix, std::uint64_t bound) {
    const std::size_t padded = ((n + kPad - 1) / kPad) * kPad;
    data.resize(padded);
    for (std::size_t l = 0; l < padded; ++l) data[l] = mix.below(bound);
  }
};

TEST(VecKernels, CreditTickRowMatchesReference) {
  Mix mix;
  for (const std::uint32_t n : {1u, 3u, 7u, 8u, 9u, 24u, 63u}) {
    for (int iter = 0; iter < 50; ++iter) {
      const std::uint64_t cap = 1 + mix.below(300);
      const std::uint64_t scale = 1 + mix.below(8);
      PaddedRow values(n, mix, cap + 10);
      PaddedRow incs(n, mix, 4);
      const std::uint64_t charge_mask = mix.mask(n);
      const std::uint64_t update_mask = mix.mask(n);
      const std::vector<std::uint64_t> before = values.data;

      std::vector<std::uint64_t> want = values.data;
      std::uint64_t want_clamp = 0;
      for (std::uint32_t l = 0; l < n; ++l) {
        if (((update_mask >> l) & 1u) == 0) continue;
        bool clamped = false;
        want[l] = reference_tick(before[l], incs.data[l],
                                 ((charge_mask >> l) & 1u) ? scale : 0, cap,
                                 &clamped);
        if (clamped) want_clamp |= std::uint64_t{1} << l;
      }

      const vec::CreditRow row{
          values.data.data(),
          incs.data.data(),
          scale,
          cap,
          charge_mask,
          update_mask,
          n,
      };
      const std::uint64_t got_clamp = vec::credit_tick_row(row);
      EXPECT_EQ(got_clamp, want_clamp) << "n=" << n;
      for (std::size_t l = 0; l < values.data.size(); ++l) {
        EXPECT_EQ(values.data[l], want[l]) << "n=" << n << " lane " << l;
      }
    }
  }
}

TEST(VecKernels, IsaMatchesScalarOnRandomRows) {
  Mix mix;
  for (const std::uint32_t n : {1u, 5u, 8u, 13u, 24u, 40u, 64u}) {
    for (int iter = 0; iter < 50; ++iter) {
      const std::uint64_t cap = 1 + mix.below(300);
      const std::uint64_t scale = 1 + mix.below(8);
      PaddedRow values(n, mix, cap + 10);
      PaddedRow incs(n, mix, 4);
      const std::uint64_t charge_mask = mix.mask(n);
      const std::uint64_t update_mask = mix.mask(n);

      std::vector<std::uint64_t> isa_values = values.data;
      std::vector<std::uint64_t> sca_values = values.data;
      vec::CreditRow row{
          isa_values.data(),
          incs.data.data(),
          scale,
          cap,
          charge_mask,
          update_mask,
          n,
      };
      const std::uint64_t isa_clamp = vec::credit_tick_row(row);
      std::uint64_t sca_clamp = 0;
      {
        ScalarGuard scalar;
        row.values = sca_values.data();
        sca_clamp = vec::credit_tick_row(row);
      }
      EXPECT_EQ(isa_clamp, sca_clamp) << "n=" << n;
      EXPECT_EQ(isa_values, sca_values) << "n=" << n;
    }
  }
}

TEST(VecKernels, CreditTickCycleMatchesPerRowCalls) {
  Mix mix;
  // slots > n_masters exercises the widened-arena geometry (the
  // segmented interconnect's extra bridge-port slots share the stride).
  for (const std::uint32_t slots : {2u, 4u, 11u}) {
    for (const std::uint32_t lanes : {1u, 3u, 8u, 24u}) {
      const std::uint32_t stride =
          ((lanes + kPad - 1) / kPad) * kPad;
      const std::uint64_t scale = 1 + mix.below(8);
      std::vector<std::uint64_t> values(slots * stride);
      std::vector<std::uint64_t> incs(slots * stride);
      std::vector<std::uint64_t> caps(slots);
      std::vector<std::uint64_t> charge(slots);
      for (std::uint32_t m = 0; m < slots; ++m) {
        caps[m] = 1 + mix.below(300);
        charge[m] = mix.mask(lanes);
        for (std::uint32_t l = 0; l < stride; ++l) {
          values[m * stride + l] = mix.below(caps[m] + 10);
          incs[m * stride + l] = mix.below(4);
        }
      }
      const std::uint64_t update_mask = mix.mask(lanes);

      std::vector<std::uint64_t> want = values;
      std::vector<std::uint64_t> want_clamped(slots);
      for (std::uint32_t m = 0; m < slots; ++m) {
        const vec::CreditRow row{
            want.data() + m * stride,
            incs.data() + m * stride,
            scale,
            caps[m],
            charge[m],
            update_mask,
            lanes,
        };
        want_clamped[m] = vec::credit_tick_row(row);
      }

      std::vector<std::uint64_t> got = values;
      std::vector<std::uint64_t> got_clamped(slots);
      const vec::CreditCycle cycle{
          got.data(),
          incs.data(),
          caps.data(),
          charge.data(),
          got_clamped.data(),
          scale,
          update_mask,
          stride,
          lanes,
          slots,
      };
      vec::credit_tick_cycle(cycle);
      EXPECT_EQ(got, want) << "slots=" << slots << " lanes=" << lanes;
      EXPECT_EQ(got_clamped, want_clamped)
          << "slots=" << slots << " lanes=" << lanes;
    }
  }
}

TEST(VecKernels, EqMaskRowMasksTailLanes) {
  // Every padding lane holds the target value; bits >= n must stay 0.
  for (const std::uint32_t n : {1u, 3u, 7u, 8u, 12u, 63u}) {
    const std::size_t padded = ((n + kPad - 1) / kPad) * kPad;
    std::vector<std::uint64_t> row(padded, 42);
    const std::uint64_t mask = vec::eq_mask_row(row.data(), 42, n);
    EXPECT_EQ(mask, n < 64 ? (std::uint64_t{1} << n) - 1 : ~std::uint64_t{0})
        << "n=" << n;
  }
}

TEST(VecKernels, SatWordsMatchesEqMaskPerRow) {
  Mix mix;
  const std::uint32_t lanes = 13;
  const std::uint32_t stride = ((lanes + kPad - 1) / kPad) * kPad;
  const std::uint32_t arena_slots = 9;
  std::vector<std::uint64_t> values(arena_slots * stride);
  for (auto& v : values) v = mix.below(5);
  const std::vector<std::uint32_t> slots = {1, 4, 8};
  const std::vector<std::uint64_t> caps = {3, 0, 4};
  std::vector<std::uint64_t> out(slots.size(), ~std::uint64_t{0});

  const vec::SatQuery query{
      values.data(),
      slots.data(),
      caps.data(),
      out.data(),
      stride,
      lanes,
      static_cast<std::uint32_t>(slots.size()),
  };
  vec::sat_words(query);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(out[i], vec::eq_mask_row(values.data() + slots[i] * stride,
                                       caps[i], lanes))
        << "query " << i;
  }
}

TEST(VecKernels, ArgmaxTiesBreakTowardsFirstIndex) {
  const std::array<std::int64_t, 5> scores = {3, 7, 7, -1, 7};
  EXPECT_EQ(vec::argmax_i64(scores.data(), scores.size()), 1);
  const std::array<std::int64_t, 3> absent = {INT64_MIN, INT64_MIN,
                                              INT64_MIN};
  EXPECT_EQ(vec::argmax_i64(absent.data(), absent.size()), -1);
  EXPECT_EQ(vec::argmax_i64(scores.data(), 1), 0);
}

TEST(VecKernels, DispatchReportsAreConsistent) {
  const std::string configured = vec::configured_isa();
  EXPECT_EQ(std::string(vec::active_isa()), configured);
  {
    ScalarGuard scalar;
    EXPECT_EQ(std::string(vec::active_isa()), "scalar");
  }
  EXPECT_EQ(std::string(vec::active_isa()), configured);
}

// --- campaign batteries: engine vs classic, byte for byte -------------

/// The max-contention campaign the ISSUE's speedup target measures: a
/// real EEMBC-like TuA against greedy MaxL virtual contenders under CBA.
[[nodiscard]] platform::CampaignSpec engine_spec(std::uint32_t runs,
                                                 std::uint32_t batch,
                                                 std::uint32_t threads,
                                                 std::uint32_t cores = 0) {
  platform::CampaignSpec spec;
  spec.protocol = platform::CampaignSpec::Protocol::kMaxContention;
  spec.config = platform::PlatformConfig::paper_wcet(platform::BusSetup::kCba);
  if (cores != 0) {
    spec.config.n_cores = cores;
    spec.config.cba = core::CbaConfig::homogeneous(
        cores, spec.config.timings.max_latency());
    spec.config.validate();
  }
  spec.tua_factory = []() { return workloads::make_eembc("canrdr"); };
  spec.runs = runs;
  spec.base_seed = 0xBADC0DE;
  spec.batch = batch;
  spec.threads = threads;
  spec.retain_raw = true;  // the batteries compare per-run bytes
  return spec;
}

void expect_identical_campaigns(const platform::CampaignResult& a,
                                const platform::CampaignResult& b,
                                const std::string& label) {
  ASSERT_EQ(a.samples().size(), b.samples().size()) << label;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.samples()[i]),
              std::bit_cast<std::uint64_t>(b.samples()[i]))
        << label << " run " << i;
  }
  ASSERT_EQ(a.aggregate.keys(), b.aggregate.keys()) << label;
  for (const std::string& key : a.aggregate.keys()) {
    ASSERT_EQ(a.aggregate.width(key), b.aggregate.width(key)) << label;
    for (std::size_t e = 0; e < a.aggregate.width(key); ++e) {
      const auto& sa = a.aggregate.element_samples(key, e);
      const auto& sb = b.aggregate.element_samples(key, e);
      ASSERT_EQ(sa.size(), sb.size()) << label << ' ' << key;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sa[i]),
                  std::bit_cast<std::uint64_t>(sb[i]))
            << label << ' ' << key << '[' << e << "] run " << i;
      }
    }
  }
}

TEST(EngineParity, BatchThreadMatrixMatchesClassicPath) {
  // runs = 7 leaves a tail stripe for batch 3 (7 % 3 == 1) and 8
  // (7 % 8 == 7: one under-full stripe, below the vector width).
  for (const std::uint32_t batch : {1u, 3u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      platform::CampaignResult engine, classic;
      {
        EngineGuard on(true);
        engine = platform::run_campaign(engine_spec(7, batch, threads));
      }
      {
        EngineGuard off(false);
        classic = platform::run_campaign(engine_spec(7, batch, threads));
      }
      expect_identical_campaigns(
          engine, classic,
          "batch=" + std::to_string(batch) +
              " threads=" + std::to_string(threads));
    }
  }
}

TEST(EngineParity, WideStripeAboveVectorWidthMatches) {
  // One 12-lane stripe: above the widest 8-lane block, with a 4-lane
  // vector tail inside the row.
  platform::CampaignResult engine, classic;
  {
    EngineGuard on(true);
    engine = platform::run_campaign(engine_spec(12, 12, 1));
  }
  {
    EngineGuard off(false);
    classic = platform::run_campaign(engine_spec(12, 12, 1));
  }
  expect_identical_campaigns(engine, classic, "12-lane stripe");
}

TEST(EngineParity, EightCoreMachineMatches) {
  // The credit-bound end of the spectrum (BM_CampaignBatchWide's shape):
  // 7 greedy contender banks, 8 Table-I slots per lane.
  platform::CampaignResult engine, classic;
  {
    EngineGuard on(true);
    engine = platform::run_campaign(engine_spec(6, 6, 1, 8));
  }
  {
    EngineGuard off(false);
    classic = platform::run_campaign(engine_spec(6, 6, 1, 8));
  }
  expect_identical_campaigns(engine, classic, "8-core machine");
}

TEST(EngineParity, ScalarKernelsMatchIsaKernelsOnCampaigns) {
  // Same engine path, both dispatches: pins the kernels (not the
  // engine's phase ordering, covered above) on a real workload.
  platform::CampaignResult isa, scalar;
  {
    EngineGuard on(true);
    isa = platform::run_campaign(engine_spec(5, 5, 1));
    ScalarGuard guard;
    scalar = platform::run_campaign(engine_spec(5, 5, 1));
  }
  expect_identical_campaigns(isa, scalar, "isa-vs-scalar");
}

}  // namespace
