// Property-based suites: invariants that must hold across the whole
// configuration space -- occupancy bounds under CBA for every inner
// policy, work conservation, cycle-conservation accounting, and
// determinism, swept with parameterized tests.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "bus/arbiter_factory.hpp"
#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "platform/multicore.hpp"
#include "platform/scenarios.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"
#include "stats/fairness.hpp"
#include "workloads/eembc_like.hpp"

namespace cbus {
namespace {

using bus::ArbiterKind;
using platform::BusSetup;
using platform::PlatformConfig;
using platform::SyntheticMaster;
using platform::SyntheticMasterConfig;

class ForcedHoldSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    CBUS_ASSERT(false);
    return 1;
  }
};

/// Rig: 4 greedy synthetic masters with the given holds, chosen arbiter,
/// optional CBA, run for `cycles`.
struct SweepRig {
  SweepRig(ArbiterKind kind, std::vector<Cycle> holds,
           std::optional<core::CbaConfig> cba, Cycle cycles)
      : bank(909) {
    arbiter = bus::make_arbiter(kind, 4, bank, /*tdma_slot=*/56);
    b = std::make_unique<bus::NonSplitBus>(bus::BusConfig{4, true}, *arbiter,
                                           slave);
    if (cba.has_value()) {
      filter = std::make_unique<core::CreditFilter>(*cba);
      b->set_filter(filter.get());
    }
    for (MasterId m = 0; m < 4; ++m) {
      SyntheticMasterConfig cfg;
      cfg.id = m;
      cfg.hold = holds[m];
      cfg.requests = 0;  // unbounded
      cfg.gap = 0;
      masters.push_back(std::make_unique<SyntheticMaster>(cfg, *b));
      kernel.add(*masters.back());
    }
    kernel.add(*b);
    kernel.run(cycles);
  }

  ForcedHoldSlave slave;
  rng::RandBank bank;
  std::unique_ptr<bus::Arbiter> arbiter;
  std::unique_ptr<bus::NonSplitBus> b;
  std::unique_ptr<core::CreditFilter> filter;
  std::vector<std::unique_ptr<SyntheticMaster>> masters;
  sim::Kernel kernel;
};

// --- P1: CBA bounds occupancy at 1/N for EVERY inner policy ------------------------

class CbaOccupancyBound : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(CbaOccupancyBound, MixedHoldsUpperBounded) {
  // Mixed request lengths (the adversarial case for request-fair
  // policies): with the CBA filter NOBODY can exceed 1/N of the cycles,
  // whatever the inner policy. Short-request masters additionally pay the
  // eligibility latency (full refill between grants), so their achieved
  // share sits below the cap -- the upper bound is the hard guarantee.
  SweepRig rig(GetParam(), {5, 9, 28, 56}, core::CbaConfig::homogeneous(4, 56),
               300'000);
  const auto& s = rig.b->statistics();
  for (MasterId m = 0; m < 4; ++m) {
    EXPECT_LE(s.occupancy_share(m), 0.26)
        << to_string(GetParam()) << " master " << m;
    EXPECT_GT(s.occupancy_share(m), 0.0)
        << to_string(GetParam()) << " master " << m;
  }
  // The long-request masters, which request-fair policies overfeed
  // (>30% each without CBA), are pinned at their quarter.
  if (GetParam() != ArbiterKind::kTdma) {
    EXPECT_GE(s.occupancy_share(3), 0.20) << to_string(GetParam());
  }
}

TEST_P(CbaOccupancyBound, EqualHoldsConvergeToEqualShares) {
  // With homogeneous request lengths the budget periods pack perfectly:
  // every master ends up with ~1/N of the cycles under every inner
  // policy (TDMA included -- its slots simply quantize the same shares).
  SweepRig rig(GetParam(), {28, 28, 28, 28},
               core::CbaConfig::homogeneous(4, 56), 300'000);
  std::vector<double> occupancy;
  for (MasterId m = 0; m < 4; ++m) {
    occupancy.push_back(rig.b->statistics().occupancy_share(m));
  }
  EXPECT_GT(stats::jain_index(occupancy), 0.97) << to_string(GetParam());
  for (MasterId m = 0; m < 4; ++m) {
    EXPECT_LE(occupancy[m], 0.26) << to_string(GetParam()) << " m" << m;
    if (GetParam() != ArbiterKind::kTdma) {
      EXPECT_GE(occupancy[m], 0.20) << to_string(GetParam()) << " m" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInnerPolicies, CbaOccupancyBound,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation,
                                           ArbiterKind::kTdma));

// --- P2: without CBA, occupancy tracks request length ---------------------------------

class RequestFairUnfairness : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(RequestFairUnfairness, LongRequestsDominateBandwidth) {
  SweepRig rig(GetParam(), {5, 5, 56, 56}, std::nullopt, 200'000);
  const auto& s = rig.b->statistics();
  // Slot-fair: grant shares equal; occupancy shares wildly unequal.
  const double occ_short = s.occupancy_share(0);
  const double occ_long = s.occupancy_share(2);
  EXPECT_GT(occ_long, occ_short * 5.0) << to_string(GetParam());
  std::vector<double> occupancy;
  for (MasterId m = 0; m < 4; ++m) occupancy.push_back(s.occupancy_share(m));
  EXPECT_LT(stats::jain_index(occupancy), 0.75) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(RequestFairPolicies, RequestFairUnfairness,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation));

// --- P3: work conservation (non-TDMA, no CBA) -----------------------------------------

class WorkConservation : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(WorkConservation, SaturatedBusStaysBusy) {
  SweepRig rig(GetParam(), {28, 28, 28, 28}, std::nullopt, 50'000);
  const auto& s = rig.b->statistics();
  const double util = static_cast<double>(s.busy_cycles) /
                      static_cast<double>(s.total_cycles);
  EXPECT_GT(util, 0.99) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(WorkConservingPolicies, WorkConservation,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation));

TEST(WorkConservationEdge, TdmaLeavesSlotsIdleWithShortRequests) {
  // TDMA with 5-cycle requests in 56-cycle slots wastes ~51/56 of the bus:
  // the §II argument for why slot-aligned TDMA underuses bandwidth.
  SweepRig rig(ArbiterKind::kTdma, {5, 5, 5, 5}, std::nullopt, 50'000);
  const auto& s = rig.b->statistics();
  const double util = static_cast<double>(s.busy_cycles) /
                      static_cast<double>(s.total_cycles);
  EXPECT_LT(util, 0.15);
  EXPECT_GT(util, 0.05);
}

// --- P4: cycle conservation (accounting identity) --------------------------------------

class CycleConservation : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(CycleConservation, BusyPlusIdleEqualsTotal) {
  SweepRig rig(GetParam(), {5, 9, 28, 56}, core::CbaConfig::homogeneous(4, 56),
               30'000);
  const auto& s = rig.b->statistics();
  EXPECT_EQ(s.busy_cycles + s.idle_cycles, s.total_cycles);
  // Sum of per-master holds equals global busy cycles (up to the
  // in-flight transfer's remaining cycles, which are pre-counted at grant).
  std::uint64_t holds = 0;
  for (MasterId m = 0; m < 4; ++m) holds += s.master[m].hold_cycles;
  EXPECT_GE(holds, s.busy_cycles);
  EXPECT_LE(holds, s.busy_cycles + 56);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CycleConservation,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation,
                                           ArbiterKind::kTdma));

// --- P5: grants never exceed requests; completions track grants -------------------------

TEST(Accounting, RequestGrantCompleteMonotone) {
  SweepRig rig(ArbiterKind::kRandomPermutation, {5, 9, 28, 56},
               core::CbaConfig::homogeneous(4, 56), 20'000);
  const auto& s = rig.b->statistics();
  for (MasterId m = 0; m < 4; ++m) {
    EXPECT_LE(s.master[m].grants, s.master[m].requests);
    EXPECT_LE(s.master[m].completions, s.master[m].grants);
    EXPECT_GE(s.master[m].completions + 1, s.master[m].grants);
  }
}

// --- P6: H-CBA share sweep --------------------------------------------------------------

TEST(HcbaShares, ThrottleBoundHoldsAndSharesAreMonotone) {
  // Sweep the TuA's configured bandwidth share. Two properties:
  //  (a) hard throttle -- nobody's measured occupancy exceeds its
  //      configured share (plus timing slack);
  //  (b) the TuA's achieved occupancy grows monotonically with its
  //      configured share and clearly exceeds the homogeneous quarter for
  //      every boosted configuration.
  const std::vector<std::pair<unsigned, unsigned>> shares{
      {1, 4}, {1, 2}, {5, 8}, {3, 4}};
  std::vector<double> achieved;
  for (const auto& [num, den] : shares) {
    const RationalRate tua_rate{num, den};
    const RationalRate rest{den - num, den * 3};
    const RationalRate rates[] = {tua_rate, rest, rest, rest};
    SweepRig rig(ArbiterKind::kRoundRobin, {28, 28, 28, 28},
                 core::CbaConfig::heterogeneous(56, rates), 400'000);
    const auto& s = rig.b->statistics();
    const double share0 = static_cast<double>(num) / den;
    const double share_rest = (1.0 - share0) / 3.0;
    EXPECT_LE(s.occupancy_share(0), share0 + 0.02)
        << "TuA share " << num << '/' << den;
    for (MasterId m = 1; m < 4; ++m) {
      EXPECT_LE(s.occupancy_share(m), share_rest + 0.02)
          << "contender under TuA share " << num << '/' << den;
    }
    achieved.push_back(s.occupancy_share(0));
  }
  for (std::size_t i = 1; i < achieved.size(); ++i) {
    EXPECT_GE(achieved[i], achieved[i - 1] - 0.01)
        << "achieved share must grow with the configured share";
  }
  EXPECT_GT(achieved.back(), achieved.front() + 0.10);
}

// --- P7: platform determinism across every bus setup ------------------------------------

class PlatformDeterminism : public ::testing::TestWithParam<BusSetup> {};

TEST_P(PlatformDeterminism, SameSeedSameExecutionTime) {
  auto tua = workloads::make_eembc("canrdr");
  const PlatformConfig cfg = PlatformConfig::paper_wcet(GetParam());
  tua->reset(123);
  platform::Multicore a(cfg, 55, *tua);
  const Cycle ta = a.run().tua_cycles;
  tua->reset(123);
  platform::Multicore b(cfg, 55, *tua);
  EXPECT_EQ(ta, b.run().tua_cycles) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSetups, PlatformDeterminism,
                         ::testing::Values(BusSetup::kRp, BusSetup::kCba,
                                           BusSetup::kHcba));

// --- P8: per-kernel sanity across the EEMBC-like set ------------------------------------

class KernelSanity : public ::testing::TestWithParam<std::string_view> {};

TEST_P(KernelSanity, RunsFinishAndUseTheBus) {
  auto tua = workloads::make_eembc(GetParam());
  tua->reset(31);
  platform::Multicore machine(PlatformConfig::paper(BusSetup::kRp), 31, *tua);
  const auto r = machine.run();
  ASSERT_TRUE(r.tua_finished) << GetParam();
  EXPECT_GT(r.tua_stats.ops, 0u);
  EXPECT_GT(r.bus_stats.master[0].grants, 0u) << GetParam();
  // Execution time exceeds pure op count (pipeline + memory costs).
  EXPECT_GT(r.tua_cycles, r.tua_stats.ops);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSanity,
                         ::testing::ValuesIn(workloads::all_kernels()));

// --- P9: every arbiter kind drives the full platform end to end --------------------------

class PlatformArbiterSweep : public ::testing::TestWithParam<ArbiterKind> {};

TEST_P(PlatformArbiterSweep, RealWorkloadFinishesUnderEveryPolicy) {
  auto tua = workloads::make_eembc("canrdr");
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kCba);
  cfg.arbiter = GetParam();
  tua->reset(77);
  platform::Multicore machine(cfg, 77, *tua);
  const auto r = machine.run();
  ASSERT_TRUE(r.tua_finished) << to_string(GetParam());
  EXPECT_EQ(r.credit_underflows, 0u) << to_string(GetParam());
  EXPECT_GT(r.bus_stats.master[0].completions, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllArbiters, PlatformArbiterSweep,
                         ::testing::Values(ArbiterKind::kRoundRobin,
                                           ArbiterKind::kFifo,
                                           ArbiterKind::kFixedPriority,
                                           ArbiterKind::kLottery,
                                           ArbiterKind::kRandomPermutation,
                                           ArbiterKind::kTdma,
                                           ArbiterKind::kDeficitRoundRobin));

// --- P10: DRR as a standalone cycle-fair policy on the live bus --------------------------

TEST(DrrProperties, CycleFairOnTheBusWithInstantRerequest) {
  // Greedy 5- vs 56-cycle masters that keep REQ asserted: DRR equalizes
  // occupancy (its defining property) without any eligibility filter.
  SweepRig rig(ArbiterKind::kDeficitRoundRobin, {5, 56, 5, 56}, std::nullopt,
               1);  // placeholder run; rebuilt below with instant rerequest
  // SweepRig lacks the instant flag; drive the pattern manually instead.
  rng::RandBank bank(4242);
  ForcedHoldSlave slave;
  const auto arb =
      bus::make_arbiter(ArbiterKind::kDeficitRoundRobin, 4, bank, 56);
  bus::NonSplitBus b(bus::BusConfig{4, true}, *arb, slave);
  sim::Kernel kernel;
  std::vector<std::unique_ptr<platform::SyntheticMaster>> masters;
  const Cycle holds[4] = {5, 56, 5, 56};
  for (MasterId m = 0; m < 4; ++m) {
    platform::SyntheticMasterConfig cfg;
    cfg.id = m;
    cfg.hold = holds[m];
    cfg.requests = 0;
    cfg.gap = 0;
    cfg.instant_rerequest = true;
    masters.push_back(std::make_unique<platform::SyntheticMaster>(cfg, b));
    kernel.add(*masters.back());
  }
  kernel.add(b);
  kernel.run(200'000);
  std::vector<double> occ;
  for (MasterId m = 0; m < 4; ++m) occ.push_back(b.statistics().occupancy_share(m));
  EXPECT_GT(stats::jain_index(occ), 0.97)
      << occ[0] << ' ' << occ[1] << ' ' << occ[2] << ' ' << occ[3];
}

// --- P11: budget never exceeds cap / never below zero across a long random run -----------

TEST(CreditInvariants, BudgetsStayInRange) {
  SweepRig rig(ArbiterKind::kLottery, {5, 9, 28, 56},
               core::CbaConfig::paper_hcba(56), 1000);
  // Sample budgets during execution.
  const auto& state = rig.filter->state();
  const auto& cfg = state.config();
  for (int extra = 0; extra < 5000; ++extra) {
    rig.kernel.step();
    for (MasterId m = 0; m < 4; ++m) {
      ASSERT_LE(state.budget(m), cfg.saturation[m]);
    }
  }
  EXPECT_EQ(state.underflow_clamps(), 0u);
}

}  // namespace
}  // namespace cbus
