// SegmentedInterconnect tests: address-range routing, bridge timing,
// single-segment equivalence with the non-split bus, per-segment Table-I
// credit conservation, the platform/experiment wiring and the
// batched-vs-serial byte-equality contract for the segmented topology.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "bus/arbiter_factory.hpp"
#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "bus/segmented.hpp"
#include "core/cba_config.hpp"
#include "core/credit_filter.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "platform/config_file.hpp"
#include "platform/multicore.hpp"
#include "platform/scenarios.hpp"
#include "sim/kernel.hpp"
#include "workloads/eembc_like.hpp"

namespace cbus {
namespace {

using bus::BusRequest;
using bus::SegmentedConfig;
using bus::SegmentedInterconnect;

/// A slave serving every transaction in a fixed number of cycles.
class FixedSlave final : public bus::BusSlave {
 public:
  explicit FixedSlave(Cycle hold) : hold_(hold) {}
  Cycle begin_transaction(const BusRequest&, Cycle) override {
    ++transactions_;
    return hold_;
  }
  void complete_transaction(const BusRequest&, Cycle) override {
    ++completions_;
  }
  std::uint64_t transactions_ = 0;
  std::uint64_t completions_ = 0;

 private:
  Cycle hold_;
};

/// A master issuing scripted (address, cycle) loads and recording the
/// completion cycle of each.
class ScriptedMaster final : public sim::Component, public bus::BusMaster {
 public:
  ScriptedMaster(MasterId id, bus::BusPort& bus,
                 std::vector<std::pair<Cycle, Addr>> script)
      : sim::Component("scripted"), id_(id), bus_(bus),
        script_(std::move(script)) {
    bus_.connect_master(id_, *this);
  }

  void tick(Cycle now) override {
    if (next_ < script_.size() && script_[next_].first <= now &&
        bus_.can_request(id_)) {
      BusRequest req;
      req.master = id_;
      req.addr = script_[next_].second;
      req.kind = MemOpKind::kLoad;
      bus_.request(req, now);
      ++next_;
    }
  }

  void on_grant(const BusRequest&, Cycle, Cycle) override {}
  void on_complete(const BusRequest&, Cycle now) override {
    completions.push_back(now);
  }

  std::vector<Cycle> completions;

 private:
  MasterId id_;
  bus::BusPort& bus_;
  std::vector<std::pair<Cycle, Addr>> script_;
  std::size_t next_ = 0;
};

[[nodiscard]] SegmentedInterconnect::ArbiterFactory rr_factory() {
  return [](std::uint32_t n_local, std::uint32_t) {
    return std::make_unique<bus::RoundRobinArbiter>(n_local);
  };
}

// --- routing and home assignment --------------------------------------------

TEST(SegmentedConfig, RoutesByAddressStripe) {
  SegmentedConfig cfg;
  cfg.topology = bus::Topology::chain(4);
  cfg.stripe_log2 = 12;  // 4 KiB stripes
  EXPECT_EQ(cfg.route(0x0000), 0u);
  EXPECT_EQ(cfg.route(0x1000), 1u);
  EXPECT_EQ(cfg.route(0x2FFF), 2u);
  EXPECT_EQ(cfg.route(0x3000), 3u);
  EXPECT_EQ(cfg.route(0x4000), 0u);  // wraps around the chain
}

TEST(SegmentedConfig, HomeSegmentsBlockDistribute) {
  SegmentedConfig cfg;
  cfg.n_masters = 4;
  cfg.topology = bus::Topology::chain(2);
  EXPECT_EQ(cfg.home_segment(0), 0u);
  EXPECT_EQ(cfg.home_segment(1), 0u);
  EXPECT_EQ(cfg.home_segment(2), 1u);
  EXPECT_EQ(cfg.home_segment(3), 1u);
  cfg.topology = bus::Topology::chain(4);
  for (MasterId m = 0; m < 4; ++m) EXPECT_EQ(cfg.home_segment(m), m);
}

TEST(SegmentedConfig, ValidatesParameters) {
  SegmentedConfig cfg;
  // Degenerate graphs are rejected at Topology construction.
  EXPECT_THROW((void)bus::Topology::chain(0), std::invalid_argument);
  EXPECT_THROW((void)bus::Topology::ring(2), std::invalid_argument);
  EXPECT_THROW((void)bus::Topology::mesh(1, 1), std::invalid_argument);
  cfg.topology = bus::Topology::chain(2);
  cfg.bridge_hold = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Fewer masters than segments would leave segments with no home core
  // (the silently-degenerate block distribution of old); now rejected.
  cfg.bridge_hold = 5;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(3);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.n_masters = 3;
  EXPECT_NO_THROW(cfg.validate());
}

// --- single-segment equivalence ---------------------------------------------

TEST(Segmented, OneSegmentMatchesNonSplitBus) {
  // With one segment there are no bridges and no routing: the
  // interconnect must reproduce the NonSplitBus cycle for cycle.
  const std::vector<std::pair<Cycle, Addr>> script{
      {0, 0x100}, {20, 0x200}, {40, 0x300}};

  auto run_single = [&](bus::BusPort& port, sim::Component& bus_component) {
    ScriptedMaster a(0, port, script);
    ScriptedMaster b(1, port, {{0, 0x400}, {30, 0x500}});
    sim::Kernel kernel;
    kernel.add(a);
    kernel.add(b);
    kernel.add(bus_component);
    kernel.run_until([&]() { return false; }, 200);
    return std::make_pair(a.completions, b.completions);
  };

  FixedSlave flat_slave(7);
  bus::RoundRobinArbiter flat_arbiter(2);
  bus::NonSplitBus flat(bus::BusConfig{2, true}, flat_arbiter, flat_slave);
  const auto flat_result = run_single(flat, flat);

  SegmentedConfig cfg;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(1);
  FixedSlave seg_slave(7);
  SegmentedInterconnect seg(cfg, seg_slave, rr_factory());
  const auto seg_result = run_single(seg, seg);

  EXPECT_EQ(flat_result.first, seg_result.first);
  EXPECT_EQ(flat_result.second, seg_result.second);

  const bus::BusStatistics flat_stats = flat.statistics();
  const bus::BusStatistics seg_stats = seg.statistics();
  for (MasterId m = 0; m < 2; ++m) {
    EXPECT_EQ(flat_stats.master[m].grants, seg_stats.master[m].grants);
    EXPECT_EQ(flat_stats.master[m].hold_cycles,
              seg_stats.master[m].hold_cycles);
    EXPECT_EQ(flat_stats.master[m].wait_cycles,
              seg_stats.master[m].wait_cycles);
  }
  EXPECT_EQ(flat_stats.busy_cycles, seg_stats.busy_cycles);
  EXPECT_EQ(seg.bridge_stats().hops, 0u);
}

// --- bridge traversal timing ------------------------------------------------

TEST(Segmented, CrossSegmentHopTimingIsExact) {
  // One master on segment 0, one load to segment 1's address range.
  // B = bridge_hold = 3, L = bridge_latency = 2, H = slave hold = 5:
  //   cycle 0       raise; seg0 arbitrates (1-cycle arbitration)
  //   cycles 1..3   forward beat occupies seg0 (B cycles)
  //   cycles 4..5   store-and-forward buffering (L cycles)
  //   cycle 5       re-raise on seg1; seg1 arbitrates
  //   cycles 6..10  target transfer (H cycles) -> complete at B+L+H = 10.
  SegmentedConfig cfg;
  cfg.n_masters = 2;  // master 1 parks on segment 1 (never requests)
  cfg.topology = bus::Topology::chain(2);
  cfg.bridge_hold = 3;
  cfg.bridge_latency = 2;
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  ScriptedMaster remote(0, seg, {{0, 0x1000}});  // routes to segment 1
  ScriptedMaster parked(1, seg, {});
  sim::Kernel kernel;
  kernel.add(remote);
  kernel.add(parked);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 60);

  ASSERT_EQ(remote.completions.size(), 1u);
  EXPECT_EQ(remote.completions[0], 10u);
  EXPECT_EQ(seg.bridge_stats().hops, 1u);
  EXPECT_EQ(seg.bridge_stats().queue_cycles, cfg.bridge_latency);
  EXPECT_EQ(seg.bridge_stats().remote_transactions, 1u);
  EXPECT_EQ(slave.transactions_, 1u);  // the slave served the TARGET hop

  // Global accounting: one grant/completion, occupancy = forward beat +
  // target transfer, wait = the 1-cycle home arbitration.
  const bus::BusStatistics stats = seg.statistics();
  EXPECT_EQ(stats.master[0].grants, 1u);
  EXPECT_EQ(stats.master[0].completions, 1u);
  EXPECT_EQ(stats.master[0].hold_cycles,
            cfg.bridge_hold + Cycle{5});
  EXPECT_EQ(stats.master[0].wait_cycles, 1u);
}

TEST(Segmented, LocalTrafficNeverCrossesBridges) {
  SegmentedConfig cfg;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(2);
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  // Master 0 (home 0) only touches stripe 0; master 1 (home 1) stripe 1.
  ScriptedMaster a(0, seg, {{0, 0x0010}, {10, 0x2020}});  // both route to 0...
  ScriptedMaster b(1, seg, {{0, 0x1010}, {10, 0x3020}});
  sim::Kernel kernel;
  kernel.add(a);
  kernel.add(b);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 100);

  EXPECT_EQ(a.completions.size(), 2u);
  EXPECT_EQ(b.completions.size(), 2u);
  EXPECT_EQ(seg.bridge_stats().hops, 0u);
  EXPECT_EQ(seg.bridge_stats().remote_transactions, 0u);
  EXPECT_EQ(seg.bridge_stats().local_transactions, 4u);
  // Per-segment grant counts: two transactions each, no transit grants.
  EXPECT_EQ(seg.segment_statistics(0).totals().grants, 2u);
  EXPECT_EQ(seg.segment_statistics(1).totals().grants, 2u);
}

TEST(Segmented, ForcedHoldRequestsStayOnHomeSegment) {
  // WCET-mode virtual contenders issue forced-hold requests; they model
  // local contention and must never route, whatever their address.
  SegmentedConfig cfg;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(2);
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  class ForcedMaster final : public sim::Component, public bus::BusMaster {
   public:
    ForcedMaster(MasterId id, bus::BusPort& bus)
        : sim::Component("forced"), id_(id), bus_(bus) {
      bus_.connect_master(id_, *this);
    }
    void tick(Cycle now) override {
      if (issued_ || !bus_.can_request(id_)) return;
      BusRequest req;
      req.master = id_;
      req.addr = 0x1000;  // segment 1's range -- must be ignored
      req.forced_hold = 8;
      bus_.request(req, now);
      issued_ = true;
    }
    void on_grant(const BusRequest&, Cycle, Cycle) override {}
    void on_complete(const BusRequest&, Cycle now) override {
      done_at = now;
    }
    Cycle done_at = 0;

   private:
    MasterId id_;
    bus::BusPort& bus_;
    bool issued_ = false;
  };

  ForcedMaster contender(0, seg);
  ScriptedMaster parked(1, seg, {});
  sim::Kernel kernel;
  kernel.add(contender);
  kernel.add(parked);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 40);

  EXPECT_EQ(contender.done_at, 8u);  // 1-cycle arbitration + 8-cycle hold
  EXPECT_EQ(seg.bridge_stats().hops, 0u);
  EXPECT_EQ(slave.transactions_, 0u);  // forced hold never consults it
  EXPECT_EQ(seg.segment_statistics(1).totals().grants, 0u);
}

TEST(Segmented, BridgeSerializesBackToBackDeliveriesOnOnePort) {
  // Two remote requests queued in the same bridge with zero buffering
  // delay: the second may only re-raise once the first's ingress hop
  // RETIRES. (Regression: in the bus's latched-grant window -- granted,
  // transfer not yet begun -- can_request() is briefly true; the bridge
  // must key off its own port occupancy, not that probe, or it
  // double-raises on an owned port.)
  SegmentedConfig cfg;
  cfg.n_masters = 4;  // masters 0 and 1 homed on segment 0
  cfg.topology = bus::Topology::chain(2);
  cfg.bridge_hold = 2;
  cfg.bridge_latency = 0;
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  ScriptedMaster a(0, seg, {{0, 0x1000}});  // both route to segment 1
  ScriptedMaster b(1, seg, {{0, 0x1040}});
  ScriptedMaster c(2, seg, {});
  ScriptedMaster d(3, seg, {});
  sim::Kernel kernel;
  kernel.add(a);
  kernel.add(b);
  kernel.add(c);
  kernel.add(d);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 100);

  ASSERT_EQ(a.completions.size(), 1u);
  ASSERT_EQ(b.completions.size(), 1u);
  EXPECT_NE(a.completions[0], b.completions[0]);
  EXPECT_EQ(seg.bridge_stats().hops, 2u);
  EXPECT_EQ(seg.bridge_stats().remote_transactions, 2u);
  EXPECT_EQ(slave.transactions_, 2u);
  // The target segment served the two hops strictly one after another.
  EXPECT_EQ(seg.segment_statistics(1).totals().grants, 2u);
}

// --- per-segment credit conservation ----------------------------------------

TEST(Segmented, PerSegmentCreditConservationUnderTableOneRules) {
  // One greedy core per segment under a per-segment credit filter whose
  // budget starts at ZERO and whose cap is high enough never to
  // saturate: after T cycles, Table I demands exactly
  //     budget(m) = increment * T - scale * occupancy_cycles(m)
  // (every cycle recovers `increment`, every occupied cycle charges
  // `scale`), with no underflow clamps. The segment's own BusStatistics
  // supplies the occupancy, so this pins charge/recovery conservation
  // per contention point.
  SegmentedConfig cfg;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(2);
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  // Segment credit config: slot 0 = the local core (inc 1 / scale 2,
  // threshold one MaxL, cap 4 MaxL so it never saturates while greedy),
  // slot 1 = the bridge ingress (credit-exempt: full recovery, zero
  // threshold).
  auto segment_cba = []() {
    core::CbaConfig cba;
    cba.n_masters = 2;
    cba.max_latency = 56;
    cba.scale = 2;
    cba.increment = {1, 2};
    cba.saturation = {4 * 2 * 56, 2 * 56};
    cba.threshold = {2 * 56, 0};
    cba.initial = {0, 2 * 56};
    cba.validate();
    return cba;
  };
  core::CreditFilter filter0(segment_cba());
  core::CreditFilter filter1(segment_cba());
  seg.set_filter(0, &filter0);
  seg.set_filter(1, &filter1);

  // Greedy local traffic: each core hammers its own segment's stripe.
  class GreedyMaster final : public sim::Component, public bus::BusMaster {
   public:
    GreedyMaster(MasterId id, bus::BusPort& bus, Addr addr)
        : sim::Component("greedy"), id_(id), bus_(bus), addr_(addr) {
      bus_.connect_master(id_, *this);
    }
    void tick(Cycle now) override {
      if (!bus_.can_request(id_)) return;
      BusRequest req;
      req.master = id_;
      req.addr = addr_;
      bus_.request(req, now);
    }
    void on_grant(const BusRequest&, Cycle, Cycle) override {}
    void on_complete(const BusRequest&, Cycle) override {}

   private:
    MasterId id_;
    bus::BusPort& bus_;
    Addr addr_;
  };

  GreedyMaster a(0, seg, 0x0000);
  GreedyMaster b(1, seg, 0x1000);
  sim::Kernel kernel;
  kernel.add(a);
  kernel.add(b);
  kernel.add(seg);
  kernel.run_until([&]() { return false; }, 3000);

  const std::array<const core::CreditFilter*, 2> filters{&filter0,
                                                         &filter1};
  for (std::uint32_t s = 0; s < 2; ++s) {
    const core::CreditState& state = filters[s]->state();
    const bus::BusStatistics& stats = seg.segment_statistics(s);
    ASSERT_EQ(stats.total_cycles, 3000u);
    const std::uint64_t occupied = stats.master[0].hold_cycles;
    ASSERT_GT(occupied, 0u);
    EXPECT_EQ(state.underflow_clamps(), 0u);
    EXPECT_FALSE(state.saturated(0)) << "cap must not clip conservation";
    EXPECT_EQ(state.budget(0), 1 * stats.total_cycles - 2 * occupied)
        << "segment " << s << ": Table-I charge/recovery not conserved";
    // The bridge slot is exempt: full recovery keeps it pinned at its cap
    // and it never underflows.
    EXPECT_TRUE(state.saturated(1));
    EXPECT_TRUE(state.eligible(1));
  }

  // The filter throttles: a greedy 5-cycle-hold master under a 1/2-rate
  // budget cannot exceed half the segment (plus the startup transient).
  const double share0 = seg.segment_statistics(0).occupancy_share(0);
  EXPECT_LT(share0, 0.55);
  EXPECT_GT(share0, 0.30);
}

TEST(Segmented, RemoteOccupancyIsChargedToTheHomeBudget) {
  // A remote transaction occupies its home segment for the forward beat
  // only, but the foreign cycles (bridge-hop service on the target
  // segment) must still be paid by the origin's HOME budget -- otherwise
  // a remote-heavy master escapes its CBA share entirely. With a
  // zero-threshold config (so nothing is gated) and enough initial
  // budget that nothing clamps, after T cycles the Table-I equation
  // must hold against the TOTAL PATH occupancy:
  //     budget(0) = init + inc*T - scale*(home_hold + foreign_hold).
  SegmentedConfig cfg;
  cfg.n_masters = 2;
  cfg.topology = bus::Topology::chain(2);
  cfg.bridge_hold = 3;
  cfg.bridge_latency = 2;
  cfg.stripe_log2 = 12;
  FixedSlave slave(5);
  SegmentedInterconnect seg(cfg, slave, rr_factory());

  auto open_cba = []() {
    core::CbaConfig cba;
    cba.n_masters = 2;
    cba.max_latency = 56;
    cba.scale = 2;
    cba.increment = {1, 2};
    cba.saturation = {1'000'000, 2 * 56};
    cba.threshold = {0, 0};
    cba.initial = {100, 2 * 56};
    cba.validate();
    return cba;
  };
  core::CreditFilter filter0(open_cba());
  core::CreditFilter filter1(open_cba());
  seg.set_filter(0, &filter0);
  seg.set_filter(1, &filter1);

  // One remote load (segment 1's range) from master 0 (home segment 0).
  ScriptedMaster remote(0, seg, {{0, 0x1000}});
  ScriptedMaster parked(1, seg, {});
  sim::Kernel kernel;
  kernel.add(remote);
  kernel.add(parked);
  kernel.add(seg);
  const Cycle kCycles = 200;
  kernel.run_until([&]() { return false; }, kCycles);

  ASSERT_EQ(remote.completions.size(), 1u);
  const std::uint64_t home_hold =
      seg.segment_statistics(0).master[0].hold_cycles;
  EXPECT_EQ(home_hold, cfg.bridge_hold);
  const Cycle foreign_hold = 5;  // the target-segment service
  EXPECT_EQ(filter0.state().underflow_clamps(), 0u);
  EXPECT_EQ(filter0.state().budget(0),
            100 + 1 * kCycles - 2 * (home_hold + foreign_hold));
  // And nothing was charged on segment 1's CORE slot (the hop rode the
  // exempt bridge slot there).
  EXPECT_EQ(filter1.state().budget(0), 100 + 1 * kCycles);
}

// --- platform wiring ---------------------------------------------------------

TEST(SegmentedPlatform, MulticoreRunsConProtocolPerSegmentHcba) {
  std::istringstream in(
      "cores = 4\nsetup = hcba\nmode = wcet\ntopology = segmented:2\n");
  const platform::PlatformConfig cfg = platform::parse_config(in);
  EXPECT_EQ(cfg.topology.segments, 2u);
  EXPECT_EQ(cfg.credit_slots(), 4u + 2u);

  auto tua = workloads::make_eembc("canrdr");
  tua->reset(7);
  platform::Multicore machine(cfg, 7, *tua);
  ASSERT_NE(machine.segmented(), nullptr);
  const platform::RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);

  // Per-segment filters exist and the record carries the seg.* keys at
  // segment width and credit.budget at core width.
  ASSERT_NE(machine.segment_filter(0), nullptr);
  ASSERT_NE(machine.segment_filter(1), nullptr);
  EXPECT_EQ(r.record.at("seg.occupancy").size(), 2u);
  EXPECT_EQ(r.record.at("seg.grants").size(), 2u);
  EXPECT_EQ(r.record.at("credit.budget").size(), 4u);
  EXPECT_GE(r.record.at("seg.remote_fraction").scalar(), 0.0);
  EXPECT_LE(r.record.at("seg.remote_fraction").scalar(), 1.0);

  // H-CBA carried over: the TuA's home-segment filter gives slot 0 the
  // 1/2 recovery rate from the global config.
  const core::CbaConfig& seg0 = machine.segment_filter(0)->state().config();
  EXPECT_DOUBLE_EQ(static_cast<double>(seg0.increment[0]) /
                       static_cast<double>(seg0.scale),
                   0.5);
}

TEST(SegmentedPlatform, SplitProtocolRejected) {
  std::istringstream in("cores = 4\nbus = split\ntopology = segmented:2\n");
  EXPECT_THROW((void)platform::parse_config(in), std::invalid_argument);
}

TEST(SegmentedPlatform, TopologyKeyParses) {
  std::istringstream single("cores = 4\ntopology = single\n");
  EXPECT_EQ(platform::parse_config(single).topology.segments, 1u);
  std::istringstream bad("cores = 4\ntopology = segmented:1\n");
  EXPECT_THROW((void)platform::parse_config(bad), std::invalid_argument);
  std::istringstream junk("cores = 4\ntopology = mesh\n");
  EXPECT_THROW((void)platform::parse_config(junk), std::invalid_argument);
  std::istringstream stripe("cores = 4\nseg_stripe = 1000\n");
  EXPECT_THROW((void)platform::parse_config(stripe), std::invalid_argument);
  std::istringstream round_trip(
      "cores = 4\ntopology = segmented:4\nseg_stripe = 8192\n"
      "bridge_hold = 7\nbridge_latency = 3\n");
  const platform::PlatformConfig cfg = platform::parse_config(round_trip);
  EXPECT_EQ(cfg.topology.segments, 4u);
  EXPECT_EQ(cfg.topology.stripe_log2, 13u);
  EXPECT_EQ(cfg.topology.bridge_hold, 7u);
  EXPECT_EQ(cfg.topology.bridge_latency, 3u);
  std::ostringstream out;
  platform::write_config(out, cfg);
  std::istringstream back_in(out.str());
  const platform::PlatformConfig back = platform::parse_config(back_in);
  EXPECT_EQ(back.topology.segments, 4u);
  EXPECT_EQ(back.topology.stripe_log2, 13u);
}

// --- experiment-level determinism -------------------------------------------

TEST(SegmentedExperiment, BatchedIsByteIdenticalToSerial) {
  // The acceptance contract for segmented_fairness.exp: batched output
  // bit-identical to serial at batch {1, 8} x threads {1, 4}, metrics
  // included. This mirrors the example file at a CI-friendly size.
  const std::string text =
      "kernel = canrdr\n"
      "sweep scenario = iso con\n"
      "sweep topology = single segmented:4\n"
      "setup = hcba\n"
      "cores = 4\n"
      "runs = 3\n"
      "metrics = all\n";
  std::istringstream serial_in(text);
  const exp::ExperimentSpec serial_spec = exp::parse_experiment(serial_in);
  const auto serial = exp::run_experiment(serial_spec, /*threads=*/1);
  ASSERT_EQ(serial.jobs.size(), 4u);
  EXPECT_EQ(serial.failed_jobs(), 0u);
  std::ostringstream serial_csv, serial_json;
  exp::make_sink(exp::SinkKind::kCsv)
      ->write(serial_spec, serial.jobs, serial_csv);
  exp::make_sink(exp::SinkKind::kJson)
      ->write(serial_spec, serial.jobs, serial_json);
  EXPECT_NE(serial_csv.str().find("segmented:4"), std::string::npos);

  for (const std::uint32_t batch : {1u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      std::istringstream in(text);
      exp::ExperimentSpec spec = exp::parse_experiment(in);
      spec.batch = batch;
      const auto result = exp::run_experiment(spec, threads);
      std::ostringstream csv, json;
      exp::make_sink(exp::SinkKind::kCsv)->write(spec, result.jobs, csv);
      exp::make_sink(exp::SinkKind::kJson)->write(spec, result.jobs, json);
      EXPECT_EQ(csv.str(), serial_csv.str())
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(json.str(), serial_json.str())
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

TEST(SegmentedExperiment, DeficitAgeSweepsAsInnerPolicy) {
  // `sweep arbiter = rp da` with a segmented topology: both inner
  // policies run per segment and produce finished campaigns.
  const std::string text =
      "kernel = canrdr\n"
      "scenario = con\n"
      "sweep arbiter = rp da\n"
      "setup = cba\n"
      "topology = segmented:2\n"
      "cores = 4\n"
      "runs = 2\n";
  std::istringstream in(text);
  const exp::ExperimentSpec spec = exp::parse_experiment(in);
  const auto result = exp::run_experiment(spec, 2);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.failed_jobs(), 0u);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.campaign.exec_time().count(), 2u);
  }
}

}  // namespace
}  // namespace cbus
