// Integration tests: whole-system behaviours the paper reports, checked
// end to end -- the §II illustrative example arithmetic, Figure-1-style
// orderings between configurations, WCET-mode dominance, and the MBPTA
// pipeline on real platform samples.
#include <gtest/gtest.h>

#include <memory>

#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "core/credit_filter.hpp"
#include "mbpta/pwcet.hpp"
#include "platform/multicore.hpp"
#include "platform/scenarios.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

namespace cbus {
namespace {

using platform::BusSetup;
using platform::CampaignSpec;
using platform::PlatformConfig;
using platform::SyntheticMaster;
using platform::SyntheticMasterConfig;

/// Shorthand: run one campaign over the paper platform.
[[nodiscard]] platform::CampaignResult campaign(
    CampaignSpec::Protocol protocol, PlatformConfig config,
    cpu::OpStream& tua, std::uint32_t runs, std::uint64_t seed,
    std::vector<cpu::OpStream*> corunners = {}) {
  CampaignSpec spec;
  spec.protocol = protocol;
  spec.config = std::move(config);
  spec.tua = &tua;
  spec.runs = runs;
  spec.base_seed = seed;
  spec.corunners = std::move(corunners);
  spec.retain_raw = true;  // integration tests read the per-run series
  return run_campaign(spec);
}

/// Raw bus rig for closed-form experiments: synthetic masters, no caches.
struct RawRig {
  explicit RawRig(std::optional<core::CbaConfig> cba = std::nullopt)
      : arbiter(4), bus(bus::BusConfig{4, true}, arbiter, null_slave) {
    if (cba.has_value()) {
      filter = std::make_unique<core::CreditFilter>(*cba);
      bus.set_filter(filter.get());
    }
  }

  SyntheticMaster& add_master(MasterId id, Cycle hold, std::uint64_t requests,
                              std::uint32_t gap) {
    SyntheticMasterConfig cfg;
    cfg.id = id;
    cfg.hold = hold;
    cfg.requests = requests;
    cfg.gap = gap;
    masters.push_back(std::make_unique<SyntheticMaster>(cfg, bus));
    kernel.add(*masters.back());
    return *masters.back();
  }

  void finalize() { kernel.add(bus); }

  class NullSlave final : public bus::BusSlave {
   public:
    Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
      CBUS_ASSERT(false);  // all requests must use forced_hold
      return 1;
    }
  } null_slave;

  bus::RoundRobinArbiter arbiter;
  bus::NonSplitBus bus;
  std::unique_ptr<core::CreditFilter> filter;
  std::vector<std::unique_ptr<SyntheticMaster>> masters;
  sim::Kernel kernel;
};

// --- E1: the §II illustrative example -------------------------------------------

TEST(IllustrativeExample, IsolationIsTenThousandCycles) {
  // "If the task under analysis runs for 10,000 cycles in isolation out of
  //  which 6,000 cycles are spent accessing the bus (1,000 requests)":
  // 1,000 x (4 compute + 1 arbitration + 5 hold) = 10,000.
  RawRig rig;
  auto& tua = rig.add_master(0, 5, 1000, 4);
  rig.finalize();
  ASSERT_TRUE(rig.kernel.run_until([&]() { return tua.done(); }, 100'000));
  EXPECT_NEAR(static_cast<double>(tua.finish_cycle()), 10'000.0, 10.0);
}

TEST(IllustrativeExample, RequestFairGivesNearTenfoldSlowdown) {
  // Request-fair arbitration vs three streaming 28-cycle contenders: each
  // TuA request waits for one transaction from every contender. The
  // paper's closed form (waits fully serialized after the compute gap)
  // gives 94,000; in the cycle-accurate model the 4-cycle gap overlaps
  // the head of the contender burst, landing at 89,000 (8.9x).
  RawRig rig;
  auto& tua = rig.add_master(0, 5, 1000, 4);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.finalize();
  ASSERT_TRUE(rig.kernel.run_until([&]() { return tua.done(); }, 500'000));
  const auto t = static_cast<double>(tua.finish_cycle());
  EXPECT_NEAR(t, 89'000.0, 2'500.0);
}

TEST(IllustrativeExample, CbaCutsTheSlowdown) {
  // Same scenario with the CBA filter: the TuA recovers a large part of
  // the bandwidth the request-fair bus handed to the long requests.
  // (The paper's idealized cycle-fair arithmetic gives 28,000; the
  // mechanism's eligibility latency -- a core must re-fill its budget
  // completely before re-arbitrating -- lands the cycle-accurate model at
  // ~56,000, still 1.6x better than request-fair and, crucially, bounded.)
  RawRig rig(core::CbaConfig::homogeneous(4, 56));
  auto& tua = rig.add_master(0, 5, 1000, 4);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.finalize();
  ASSERT_TRUE(rig.kernel.run_until([&]() { return tua.done(); }, 500'000));
  const auto t = static_cast<double>(tua.finish_cycle());
  EXPECT_GT(t, 45'000.0);
  EXPECT_LT(t, 65'000.0);
}

TEST(IllustrativeExample, CbaSlowdownIndependentOfContenderLength) {
  // The paper's headline: under request-fair policies the TuA's slowdown
  // grows without bound in the contenders' request length; under CBA it
  // is capped by the credit mechanism. Double the contender length and
  // compare.
  const auto run_with = [](std::optional<core::CbaConfig> cba,
                           Cycle contender_hold) {
    RawRig rig(std::move(cba));
    auto& tua = rig.add_master(0, 5, 1000, 4);
    rig.add_master(1, contender_hold, 0, 0);
    rig.add_master(2, contender_hold, 0, 0);
    rig.add_master(3, contender_hold, 0, 0);
    rig.finalize();
    EXPECT_TRUE(rig.kernel.run_until([&]() { return tua.done(); }, 900'000));
    return static_cast<double>(tua.finish_cycle());
  };

  const double rf_28 = run_with(std::nullopt, 28);
  const double rf_56 = run_with(std::nullopt, 56);
  // Request-fair: slowdown scales with contender hold (89k -> 173k).
  EXPECT_GT(rf_56, rf_28 * 1.7);

  const double cba_28 = run_with(core::CbaConfig::homogeneous(4, 56), 28);
  const double cba_56 = run_with(core::CbaConfig::homogeneous(4, 56), 56);
  // CBA: the credit throttle caps every contender at 1/N occupancy, so
  // doubling their request length only adds residual blocking (a single
  // in-flight transaction), far from doubling the TuA's time.
  EXPECT_LT(cba_56 / cba_28, 1.45);
  EXPECT_LT(cba_56, rf_56 * 0.50);
}

TEST(IllustrativeExample, CbaUpperBoundsEveryMasterAtQuarter) {
  // The hard CBA guarantee is an upper bound: nobody exceeds 1/N of the
  // cycles. The short-request master additionally pays an eligibility
  // latency (it must refill completely between grants, and its waiting
  // time at the saturated budget is forfeited), so its achieved share
  // sits below 1/4 -- the effect H-CBA method 1 (cap boost) addresses.
  RawRig rig(core::CbaConfig::homogeneous(4, 56));
  rig.add_master(0, 5, 0, 0);   // greedy short requester
  rig.add_master(1, 28, 0, 0);  // greedy long requesters
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.finalize();
  rig.kernel.run(100'000);
  const auto& s = rig.bus.statistics();
  for (MasterId m = 0; m < 4; ++m) {
    EXPECT_LE(s.occupancy_share(m), 0.26) << "master " << m;
  }
  for (MasterId m = 1; m < 4; ++m) {
    EXPECT_GE(s.occupancy_share(m), 0.22) << "master " << m;
  }
  EXPECT_GE(s.occupancy_share(0), 0.05);
}

TEST(IllustrativeExample, CapBoostRestoresShortRequesterShare) {
  // H-CBA method 1: letting the short-request master bank credit above
  // the eligibility threshold (cap = 4x) lets it burst back-to-back and
  // recovers its quarter of the bandwidth.
  RawRig rig(core::CbaConfig::with_cap_boost(
      core::CbaConfig::homogeneous(4, 56), 0, 4));
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.finalize();
  rig.kernel.run(100'000);
  EXPECT_GE(rig.bus.statistics().occupancy_share(0), 0.19);
  EXPECT_LE(rig.bus.statistics().occupancy_share(0), 0.27);
}

TEST(IllustrativeExample, WithoutCbaLongRequestsHogBandwidth) {
  // The paper's §I example: 5-cycle vs 45-cycle alternating requests give
  // 10% vs 90% occupancy under slot-fair arbitration.
  RawRig rig;
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, 45, 0, 0);
  rig.finalize();
  rig.kernel.run(100'000);
  const auto& s = rig.bus.statistics();
  EXPECT_NEAR(s.occupancy_share(0), 0.10, 0.02);
  EXPECT_NEAR(s.occupancy_share(1), 0.90, 0.02);
  // while grant counts are (slot-)fair:
  EXPECT_NEAR(s.grant_share(0), 0.5, 0.02);
}

TEST(IllustrativeExample, HcbaShiftsBandwidthToTua) {
  // H-CBA method 2 at the paper's evaluation point (TuA 1/2, others 1/6).
  // The 1/6 contender cap is hit exactly; the TuA's achieved share sits
  // between the homogeneous quarter and its configured half (eligibility
  // latency again), roughly doubling its homogeneous-CBA share.
  RawRig rig(core::CbaConfig::paper_hcba(56));
  rig.add_master(0, 56, 0, 0);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.finalize();
  rig.kernel.run(200'000);
  const auto& s = rig.bus.statistics();
  EXPECT_GE(s.occupancy_share(0), 0.30);
  EXPECT_LE(s.occupancy_share(0), 0.52);
  EXPECT_LE(s.occupancy_share(1), 1.0 / 6.0 + 0.01);
  EXPECT_GE(s.occupancy_share(1), 1.0 / 6.0 - 0.03);
  // The TuA clearly outranks every contender.
  EXPECT_GT(s.occupancy_share(0), 1.8 * s.occupancy_share(1));
}

// --- Figure-1-style orderings on the full platform --------------------------------

TEST(Figure1Orderings, CbaCutsContentionSlowdownForMatrix) {
  auto tua = workloads::make_eembc("matrix");

  const auto iso = campaign(CampaignSpec::Protocol::kIsolation,
                            PlatformConfig::paper(BusSetup::kRp), *tua, 3,
                            2017);
  const auto rp_con = campaign(CampaignSpec::Protocol::kMaxContention,
                               PlatformConfig::paper_wcet(BusSetup::kRp),
                               *tua, 3, 2017);
  const auto cba_con = campaign(CampaignSpec::Protocol::kMaxContention,
                                PlatformConfig::paper_wcet(BusSetup::kCba),
                                *tua, 3, 2017);

  const double s_rp = platform::slowdown(rp_con, iso);
  const double s_cba = platform::slowdown(cba_con, iso);
  EXPECT_GT(s_rp, s_cba + 0.4) << "CBA must cut maximum-contention slowdown";
  EXPECT_GT(s_rp, 2.5);   // matrix suffers badly under RP (paper: 3.34x)
  EXPECT_LT(s_rp, 4.0);
  EXPECT_LT(s_cba, 2.6);  // and is tamed by CBA (paper: <= 2.34x)
  EXPECT_GT(s_cba, 1.4);
}

TEST(Figure1Orderings, HcbaNoWorseThanCbaForTua) {
  auto tua = workloads::make_eembc("matrix");
  const auto cba_con = campaign(CampaignSpec::Protocol::kMaxContention,
                                PlatformConfig::paper_wcet(BusSetup::kCba),
                                *tua, 3, 2018);
  const auto hcba_con = campaign(
      CampaignSpec::Protocol::kMaxContention,
      PlatformConfig::paper_wcet(BusSetup::kHcba), *tua, 3, 2018);
  EXPECT_LE(hcba_con.exec_time().mean(), cba_con.exec_time().mean() * 1.05);
}

TEST(Figure1Orderings, CbaIsolationOverheadIsSmall) {
  auto tua = workloads::make_eembc("tblook");
  const auto rp_iso = campaign(CampaignSpec::Protocol::kIsolation,
                               PlatformConfig::paper(BusSetup::kRp), *tua,
                               3, 2019);
  const auto cba_iso = campaign(CampaignSpec::Protocol::kIsolation,
                                PlatformConfig::paper(BusSetup::kCba), *tua,
                                3, 2019);
  const double overhead = platform::slowdown(cba_iso, rp_iso);
  EXPECT_LT(overhead, 1.25) << "CBA in isolation should cost little";
  EXPECT_GE(overhead, 0.9);
}

TEST(Figure1Orderings, NoCreditUnderflowOnPaperPlatform) {
  auto tua = workloads::make_eembc("cacheb");
  const auto r = campaign(CampaignSpec::Protocol::kMaxContention,
                          PlatformConfig::paper_wcet(BusSetup::kCba), *tua,
                          2, 0xC0FFEE);
  EXPECT_EQ(r.credit_underflows(), 0u)
      << "MaxL = 56 must cover every transaction";
}

TEST(Figure1Orderings, CbaEqualisesOccupancyUnderMaxContention) {
  // The record pipeline surfaces the paper's core claim directly: with
  // CBA engaged, per-master occupancy cycles are near-equal (Jain -> 1)
  // even though the TuA's requests are short and the contenders' long.
  auto tua = workloads::make_eembc("cacheb");
  const auto cba = campaign(CampaignSpec::Protocol::kMaxContention,
                            PlatformConfig::paper_wcet(BusSetup::kCba),
                            *tua, 3, 2020);
  EXPECT_GT(cba.aggregate.element_stats("fair.jain_occupancy").mean(),
            0.85);
}

// --- WCET-mode dominance ------------------------------------------------------------

TEST(WcetMode, BoundsOperationModeContention) {
  // The WCET-estimation protocol must produce contention at least as bad
  // as real streaming co-runners (that is its purpose, §III-B).
  auto tua = workloads::make_eembc("cacheb");

  workloads::StreamingStream s1(0), s2(0), s3(0);
  const auto op_con = campaign(CampaignSpec::Protocol::kCorun,
                               PlatformConfig::paper(BusSetup::kCba), *tua,
                               3, 4, {&s1, &s2, &s3});
  const auto wcet_con = campaign(CampaignSpec::Protocol::kMaxContention,
                                 PlatformConfig::paper_wcet(BusSetup::kCba),
                                 *tua, 3, 4);
  EXPECT_GE(wcet_con.exec_time().mean(), 0.95 * op_con.exec_time().mean());
}

// --- MBPTA end-to-end ----------------------------------------------------------------

TEST(MbptaPipeline, PwcetBoundsObservedOperation) {
  auto tua = workloads::make_eembc("canrdr");
  const auto wcet_runs = campaign(
      CampaignSpec::Protocol::kMaxContention,
      PlatformConfig::paper_wcet(BusSetup::kCba), *tua, 60, 5);

  mbpta::MbptaConfig mcfg;
  mcfg.block_size = 5;
  const auto analysis = mbpta::analyze(wcet_runs.samples(), mcfg);

  // The pWCET curve at 1e-9 must be above the maximum WCET-mode
  // observation itself.
  EXPECT_GT(analysis.curve[2].wcet_estimate, analysis.observed_max * 0.999);

  // ... and above anything seen in operation mode with real contenders.
  workloads::StreamingStream s1(0), s2(0), s3(0);
  const auto op = campaign(CampaignSpec::Protocol::kCorun,
                           PlatformConfig::paper(BusSetup::kCba), *tua, 10,
                           6, {&s1, &s2, &s3});
  EXPECT_GT(analysis.curve[2].wcet_estimate, op.exec_time().max());
}

}  // namespace
}  // namespace cbus
