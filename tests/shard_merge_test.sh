#!/usr/bin/env bash
# Shard/merge determinism check: the same streaming campaign run as 1, 3
# and 8 shard processes (x 1 and 4 worker threads) and folded back with
# cbus_merge must produce JSON byte-identical to a single-process run.
#
# Usage: shard_merge_test.sh CBUS_SIM CBUS_MERGE EXPERIMENT_FILE
set -euo pipefail

sim="$1"
merge="$2"
exp="$3"

work="$(mktemp -d "${TMPDIR:-/tmp}/cbus-shard-XXXXXX")"
trap 'rm -rf "$work"' EXIT

# Reference: one process, default threads.
mkdir "$work/single"
(cd "$work/single" && "$sim" --experiment "$exp" >/dev/null)
reference="$work/single/stream_shard.json"
[[ -s "$reference" ]] || { echo "FAIL: reference JSON missing"; exit 1; }

for shards in 1 3 8; do
  for threads in 1 4; do
    dir="$work/s${shards}t${threads}"
    mkdir "$dir"
    cd "$dir"
    ckpts=()
    for ((i = 0; i < shards; ++i)); do
      "$sim" --experiment "$exp" --threads "$threads" \
             --shard "$i/$shards" --checkpoint "$dir/shard$i.ckpt" \
             >/dev/null
      ckpts+=("$dir/shard$i.ckpt")
    done
    "$merge" --experiment "$exp" "${ckpts[@]}" >/dev/null
    if ! cmp -s "$reference" "$dir/stream_shard.json"; then
      echo "FAIL: $shards shard(s) x $threads thread(s) JSON differs" \
           "from the single-process run"
      diff "$reference" "$dir/stream_shard.json" | head -20
      exit 1
    fi
    echo "ok: $shards shard(s) x $threads thread(s) byte-identical"
  done
done

# An incomplete shard set must be refused, not silently merged.
cd "$work/s3t1"
if "$merge" --experiment "$exp" shard0.ckpt shard1.ckpt \
    >/dev/null 2>"$work/err.txt"; then
  echo "FAIL: merge accepted an incomplete shard set"
  exit 1
fi
grep -q "checkpoint file(s) were given" "$work/err.txt" || {
  echo "FAIL: unexpected merge error:"; cat "$work/err.txt"; exit 1; }

echo "PASS"
