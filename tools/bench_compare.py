#!/usr/bin/env python3
"""CI bench-baseline ratio gate.

Compares Google-Benchmark ``--benchmark_format=json`` results against the
pinned reference numbers in ``bench/baselines.json`` (derived from
docs/BASELINES.md) and fails on a >threshold throughput regression.

Because CI runners are not the pinned reference machine, absolute times
are meaningless there; the gate therefore normalises by the MEDIAN
current/baseline ratio across all matched benchmarks (the machine-speed
factor) and flags benchmarks whose own ratio exceeds the median by more
than ``--threshold``. A uniform slowdown (slower machine) passes; one
benchmark regressing relative to the others (the case a code change
causes) fails. ``--warn-only`` downgrades failures to warnings for
unpinned/noisy runners.

Usage:
  bench_compare.py [--baseline bench/baselines.json] [--threshold 0.25]
                   [--warn-only] results.json [more.json ...]
  bench_compare.py --self-test

The self-test fabricates a clean result set (must pass) and one with a
single 2x slowdown injected (must fail), exercising the gate logic
without running any benchmark; CTest runs it as
``tools.bench_compare_selftest``.
"""

import argparse
import json
import statistics
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(paths):
    """name -> real_time in ns, merged across result files."""
    results = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for entry in doc.get("benchmarks", []):
            if entry.get("run_type") == "aggregate":
                continue
            unit = TIME_UNIT_NS[entry.get("time_unit", "ns")]
            results[entry["name"]] = float(entry["real_time"]) * unit
    return results


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    return {name: float(entry["real_time_ns"])
            for name, entry in doc["benchmarks"].items()}


def compare(current, baseline, threshold):
    """Return (rows, regressions, machine_factor, missing).

    Rows: (name, ratio, normalized, flag). `missing` lists baseline
    benchmarks absent from the results -- lost coverage (a rename, or a
    gated binary dropped from the CI step) must fail the gate too, or a
    regression simply hides by renaming.
    """
    matched = sorted(name for name in current if name in baseline)
    missing = sorted(name for name in baseline if name not in current)
    if not matched:
        raise SystemExit(
            "bench_compare: no benchmark names match the baseline "
            "(refresh bench/baselines.json?)")
    ratios = {name: current[name] / baseline[name] for name in matched}
    machine = statistics.median(ratios.values())
    rows, regressions = [], []
    for name in matched:
        normalized = ratios[name] / machine
        flag = ""
        if normalized > 1.0 + threshold:
            flag = "REGRESSION"
            regressions.append(name)
        elif normalized < 1.0 / (1.0 + threshold):
            flag = "improved"
        rows.append((name, ratios[name], normalized, flag))
    return rows, regressions, machine, missing


def run_gate(args):
    current = load_results(args.results)
    baseline = load_baseline(args.baseline)
    rows, regressions, machine, missing = compare(
        current, baseline, args.threshold)

    width = max(len(name) for name, *_ in rows)
    print(f"bench_compare: {len(rows)} benchmark(s) vs {args.baseline}, "
          f"machine-speed factor {machine:.3f}x, "
          f"threshold {args.threshold:.0%}")
    for name, ratio, normalized, flag in rows:
        print(f"  {name:<{width}}  ratio {ratio:7.3f}x  "
              f"normalized {normalized:6.3f}x  {flag}")

    verb = "warning" if args.warn_only else "error"
    for name in missing:
        print(f"::{verb} ::bench gate: baseline benchmark {name} missing "
              "from the results (renamed, or its binary not run?)")
    if regressions:
        for name in regressions:
            print(f"::{verb} ::bench gate: {name} regressed "
                  f">{args.threshold:.0%} vs baseline (normalized)")
    if regressions or missing:
        if not args.warn_only:
            return 1
    else:
        print("bench_compare: gate PASSED")
    return 0


def self_test():
    baseline = {f"BM_X/{i}": 100.0 * (i + 1) for i in range(4)}
    # Uniformly 3x slower machine: the ratio gate must PASS.
    clean = {name: 3.0 * ns for name, ns in baseline.items()}
    rows, regressions, _, missing = compare(clean, baseline, 0.25)
    assert not regressions, f"clean run flagged: {regressions}"
    assert not missing, f"clean run missing: {missing}"
    assert len(rows) == 4

    # Same machine factor, but one benchmark 2x slower: must FAIL.
    injected = dict(clean)
    injected["BM_X/2"] *= 2.0
    _, regressions, _, _ = compare(injected, baseline, 0.25)
    assert regressions == ["BM_X/2"], f"2x slowdown missed: {regressions}"

    # An improvement must not trip the gate.
    improved = dict(clean)
    improved["BM_X/1"] /= 2.0
    _, regressions, _, _ = compare(improved, baseline, 0.25)
    assert not regressions, f"improvement flagged: {regressions}"

    # A renamed/dropped benchmark is lost coverage, not a silent pass.
    renamed = dict(clean)
    del renamed["BM_X/3"]
    _, regressions, _, missing = compare(renamed, baseline, 0.25)
    assert missing == ["BM_X/3"], f"dropped benchmark missed: {missing}"
    assert not regressions

    print("bench_compare: self-test PASSED (clean passes, injected 2x "
          "slowdown fails, dropped benchmark detected)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="*",
                        help="--benchmark_format=json output files")
    parser.add_argument("--baseline", default="bench/baselines.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed normalized slowdown (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions without failing "
                             "(non-pinned runners)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate logic and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.results:
        parser.error("no result files given (or use --self-test)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
