// cbus_merge: fold sharded campaign checkpoints into one experiment
// result.
//
// A sharded campaign (`cbus_sim --shard i/N --checkpoint shard_i.ckpt`)
// leaves one checkpoint file per shard, each holding that shard's share
// of the work slices as exactly-mergeable aggregator digests. This tool
// validates the set -- every header must describe the same experiment,
// shard indices must be distinct and the slice plan fully covered --
// folds the slices back into per-job results, and writes the
// experiment's configured outputs (JSON/summary), byte-identical to a
// single-process run of the same spec.
//
// The fold streams: each checkpoint is read in one pass and every slice
// digest is folded into its job's aggregate as it is decoded, so peak
// memory is O(jobs), independent of the slice count (exp::
// fold_checkpoints_streaming). Million-slice campaigns merge in constant
// space; the result is bit-identical to the materializing path.
//
// Usage:
//   cbus_merge --experiment FILE [--config FILE] [--progress]
//              [--telemetry FILE] CKPT0 CKPT1 ... CKPTn-1
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace cbus;

[[noreturn]] void usage(int code) {
  std::cout <<
      "cbus_merge -- fold sharded campaign checkpoints into one result\n"
      "  --experiment FILE the experiment file the shards ran (must match\n"
      "                    the checkpoints' recorded spec exactly)\n"
      "  --config FILE     platform config file, as passed to cbus_sim\n"
      "  --progress        throttled fold progress line on stderr (stdout\n"
      "                    and all output files stay byte-identical)\n"
      "  --telemetry FILE  machine-readable fold telemetry (slices/sec,\n"
      "                    wall time, peak RSS)\n"
      "  CKPT...           one checkpoint file per shard, any order\n"
      "Outputs go where the experiment file says (json/summary); per-run\n"
      "csv is unavailable (shards stream digests, not raw series).\n";
  std::exit(code);
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "cbus_merge: " << message << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string experiment_path;
  std::string config_path;
  std::string telemetry_path;
  bool progress = false;
  std::vector<std::string> checkpoint_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--experiment") {
      experiment_path = value();
    } else if (arg == "--config") {
      config_path = value();
    } else if (arg == "--telemetry") {
      telemetry_path = value();
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option: " + arg);
    } else {
      checkpoint_paths.push_back(arg);
    }
  }
  if (experiment_path.empty()) die("--experiment is required");
  if (checkpoint_paths.empty()) {
    die("no checkpoint files given (one per shard)");
  }

  try {
    exp::ExperimentSpec spec = exp::load_experiment(experiment_path);
    if (!config_path.empty()) {
      std::ifstream in(config_path);
      if (!in.good()) die("cannot open config file: " + config_path);
      std::ostringstream text;
      text << in.rdbuf();
      spec.platform_text = text.str();
    }
    const exp::ExperimentResult result =
        exp::fold_checkpoints_streaming(spec, checkpoint_paths, progress);
    if (!telemetry_path.empty()) {
      std::ofstream out(telemetry_path, std::ios::trunc);
      if (!out.good()) die("cannot write telemetry file: " + telemetry_path);
      obs::write_telemetry_json(out, result.telemetry, "merge");
    }
    exp::emit_outputs(spec, result.jobs, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cbus_merge: error: " << e.what() << "\n";
    return 1;
  }
}
