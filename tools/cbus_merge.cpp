// cbus_merge: fold sharded campaign checkpoints into one experiment
// result.
//
// A sharded campaign (`cbus_sim --shard i/N --checkpoint shard_i.ckpt`)
// leaves one checkpoint file per shard, each holding that shard's share
// of the work slices as exactly-mergeable aggregator digests. This tool
// validates the set -- every header must describe the same experiment,
// shard indices must be distinct and the slice plan fully covered --
// folds the slices back into per-job results, and writes the
// experiment's configured outputs (JSON/summary), byte-identical to a
// single-process run of the same spec.
//
// Usage:
//   cbus_merge --experiment FILE [--config FILE] CKPT0 CKPT1 ... CKPTn-1
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"

namespace {

using namespace cbus;

[[noreturn]] void usage(int code) {
  std::cout <<
      "cbus_merge -- fold sharded campaign checkpoints into one result\n"
      "  --experiment FILE the experiment file the shards ran (must match\n"
      "                    the checkpoints' recorded spec exactly)\n"
      "  --config FILE     platform config file, as passed to cbus_sim\n"
      "  CKPT...           one checkpoint file per shard, any order\n"
      "Outputs go where the experiment file says (json/summary); per-run\n"
      "csv is unavailable (shards stream digests, not raw series).\n";
  std::exit(code);
}

[[noreturn]] void die(const std::string& message) {
  std::cerr << "cbus_merge: " << message << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string experiment_path;
  std::string config_path;
  std::vector<std::string> checkpoint_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--experiment") {
      experiment_path = value();
    } else if (arg == "--config") {
      config_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option: " + arg);
    } else {
      checkpoint_paths.push_back(arg);
    }
  }
  if (experiment_path.empty()) die("--experiment is required");
  if (checkpoint_paths.empty()) {
    die("no checkpoint files given (one per shard)");
  }

  try {
    exp::ExperimentSpec spec = exp::load_experiment(experiment_path);
    if (!config_path.empty()) {
      std::ifstream in(config_path);
      if (!in.good()) die("cannot open config file: " + config_path);
      std::ostringstream text;
      text << in.rdbuf();
      spec.platform_text = text.str();
    }
    const exp::LoadedCheckpoint merged =
        exp::merge_checkpoints(spec, checkpoint_paths);
    const exp::ExperimentResult result =
        exp::finalize_from_slices(spec, merged.slices);
    exp::emit_outputs(spec, result.jobs, std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cbus_merge: error: " << e.what() << "\n";
    return 1;
  }
}
