#!/usr/bin/env python3
"""Validate a cbus_sim --trace Chrome trace-event JSON document.

Checks the structural contract docs/OBSERVABILITY.md pins (and that
Perfetto/chrome://tracing rely on): the object form with traceEvents +
metadata.provenance, the four-process track layout, well-formed span
("X"), counter ("C") and instant ("i") events, per-master credit and
eligibility tracks, non-overlapping transfer spans per master (the
bus grants one transfer at a time, so overlap means the tracer
misattributed an event), and per-edge bridge-queue tracks named
`bridge s<from>->s<to>` with a symmetric edge set (every directed
bridge has its reverse, whatever the topology).

Usage:
  trace_check.py TRACE.json [--expect-masters N] [--expect-bridges N]
                 [--max-ts T]
  trace_check.py --self-test

Exit code 0 when the trace validates, 1 with a diagnostic otherwise.
"""

import argparse
import json
import re
import sys

BRIDGE_TRACK_RE = re.compile(r"^bridge s(\d+)->s(\d+)$")

PID_MASTERS = 0
PID_CREDIT = 1
PID_BRIDGES = 2
PID_DEMAND = 3


class TraceError(Exception):
    pass


def fail(message):
    raise TraceError(message)


def validate(doc, expect_masters=None, expect_bridges=None, max_ts=None):
    if not isinstance(doc, dict):
        fail("top level must be an object (the JSON object form)")
    for key in ("traceEvents", "metadata"):
        if key not in doc:
            fail(f"missing top-level key: {key}")
    if "provenance" not in doc["metadata"]:
        fail("metadata carries no build provenance")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    process_names = {}
    thread_names = {}
    counter_tracks = {}  # (pid, name) -> sample count
    spans_by_tid = {}    # tid -> [(ts, dur, name)]
    counts = {"M": 0, "X": 0, "C": 0, "i": 0}

    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        ph = event.get("ph")
        if ph not in counts:
            fail(f"{where}: unknown phase {ph!r}")
        counts[ph] += 1
        if "pid" not in event:
            fail(f"{where}: missing pid")

        if ph == "M":
            name = event.get("name")
            if name == "process_name":
                process_names[event["pid"]] = event["args"]["name"]
            elif name == "thread_name":
                thread_names[(event["pid"], event["tid"])] = \
                    event["args"]["name"]
            else:
                fail(f"{where}: unknown metadata record {name!r}")
            continue

        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        if max_ts is not None and ts >= max_ts:
            fail(f"{where}: ts {ts} outside the capture window "
                 f"(expected < {max_ts})")

        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: span with bad dur {dur!r}")
            if event["pid"] != PID_MASTERS:
                fail(f"{where}: span outside the bus-masters process")
            spans_by_tid.setdefault(event["tid"], []).append(
                (ts, dur, event.get("name")))
        elif ph == "C":
            args = event.get("args", {})
            if "value" not in args or not isinstance(
                    args["value"], (int, float)):
                fail(f"{where}: counter without a numeric args.value")
            key = (event["pid"], event.get("name"))
            counter_tracks[key] = counter_tracks.get(key, 0) + 1
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(f"{where}: instant without a scope")

    for pid, label in ((PID_MASTERS, "bus masters"),
                       (PID_CREDIT, "credit (cycles)"),
                       (PID_BRIDGES, "bridge queues"),
                       (PID_DEMAND, "demand")):
        if process_names.get(pid) != label:
            fail(f"pid {pid} is not named {label!r} "
                 f"(got {process_names.get(pid)!r})")

    if counts["X"] == 0:
        fail("no spans captured (expected request->transfer activity)")
    if counts["C"] == 0:
        fail("no counter samples captured")

    # One bus, one transfer at a time: per master, transfer spans must
    # not overlap (wait spans may legally abut/overlap transfers).
    for tid, spans in spans_by_tid.items():
        xfers = sorted((ts, dur) for ts, dur, name in spans
                       if name == "xfer")
        for (a_ts, a_dur), (b_ts, _) in zip(xfers, xfers[1:]):
            if a_ts + a_dur > b_ts:
                fail(f"master m{tid}: overlapping transfer spans at "
                     f"ts {a_ts} and {b_ts}")

    if expect_masters is not None:
        for m in range(expect_masters):
            if (PID_MASTERS, m) not in thread_names:
                fail(f"missing thread_name for master m{m}")
            for track in (f"credit m{m}", f"eligible m{m}"):
                if (PID_CREDIT, track) not in counter_tracks:
                    fail(f"missing counter track {track!r}")
            if (PID_DEMAND, f"demand m{m}") not in counter_tracks:
                fail(f"missing counter track 'demand m{m}'")

    bridge_tracks = [name for (pid, name) in counter_tracks
                     if pid == PID_BRIDGES]
    if expect_bridges is not None and len(bridge_tracks) != expect_bridges:
        fail(f"expected {expect_bridges} bridge-queue track(s), found "
             f"{len(bridge_tracks)}: {sorted(bridge_tracks)}")

    # Bridge tracks are keyed by graph edge: one track per directed
    # bridge, named for its endpoints, no self-loops, and every edge
    # paired with its reverse (chain, ring and mesh adjacencies are all
    # symmetric; a missing direction means the tracer dropped a track).
    edges = set()
    for name in bridge_tracks:
        match = BRIDGE_TRACK_RE.match(name or "")
        if not match:
            fail(f"bridge-queue track {name!r} does not match "
                 f"'bridge s<from>->s<to>'")
        frm, to = int(match.group(1)), int(match.group(2))
        if frm == to:
            fail(f"bridge-queue track {name!r} is a self-loop")
        edges.add((frm, to))
    for frm, to in sorted(edges):
        if (to, frm) not in edges:
            fail(f"bridge track 'bridge s{frm}->s{to}' has no reverse "
                 f"direction (bridge adjacency is symmetric)")

    return counts


def fabricate(valid=True):
    """A minimal document exercising every checked rule."""
    events = [
        {"ph": "M", "name": "process_name", "pid": PID_MASTERS,
         "args": {"name": "bus masters"}},
        {"ph": "M", "name": "process_name", "pid": PID_CREDIT,
         "args": {"name": "credit (cycles)"}},
        {"ph": "M", "name": "process_name", "pid": PID_BRIDGES,
         "args": {"name": "bridge queues"}},
        {"ph": "M", "name": "process_name", "pid": PID_DEMAND,
         "args": {"name": "demand"}},
        {"ph": "M", "name": "thread_name", "pid": PID_MASTERS, "tid": 0,
         "args": {"name": "master m0"}},
        {"ph": "X", "name": "xfer", "pid": PID_MASTERS, "tid": 0,
         "ts": 10, "dur": 4, "args": {}},
        {"ph": "X", "name": "xfer", "pid": PID_MASTERS, "tid": 0,
         "ts": 20 if valid else 12, "dur": 4, "args": {}},
        {"ph": "C", "name": "credit m0", "pid": PID_CREDIT, "tid": 0,
         "ts": 0, "args": {"value": 38.0}},
        {"ph": "C", "name": "eligible m0", "pid": PID_CREDIT, "tid": 0,
         "ts": 0, "args": {"value": 1}},
        {"ph": "C", "name": "demand m0", "pid": PID_DEMAND, "tid": 0,
         "ts": 0, "args": {"value": 2}},
        {"ph": "C", "name": "bridge s0->s1", "pid": PID_BRIDGES, "tid": 0,
         "ts": 0, "args": {"value": 1}},
        {"ph": "C", "name": "bridge s1->s0", "pid": PID_BRIDGES, "tid": 1,
         "ts": 0, "args": {"value": 0}},
        {"ph": "i", "name": "credit.underflow", "pid": PID_MASTERS,
         "tid": 0, "ts": 11, "s": "t"},
    ]
    return {"displayTimeUnit": "ms",
            "metadata": {"provenance": {"version": "self-test"}},
            "traceEvents": events}


def self_test():
    validate(fabricate(valid=True), expect_masters=1, expect_bridges=2)
    try:
        validate(fabricate(valid=False), expect_masters=1)
    except TraceError as e:
        if "overlapping" not in str(e):
            print(f"self-test: wrong diagnostic: {e}", file=sys.stderr)
            return 1
    else:
        print("self-test: overlapping spans not caught", file=sys.stderr)
        return 1
    try:
        validate(fabricate(valid=True), expect_masters=2)
    except TraceError:
        pass
    else:
        print("self-test: missing master not caught", file=sys.stderr)
        return 1
    malformed = fabricate(valid=True)
    for event in malformed["traceEvents"]:
        if event.get("name") == "bridge s0->s1":
            event["name"] = "bridge q0"
    try:
        validate(malformed, expect_masters=1)
    except TraceError as e:
        if "does not match" not in str(e):
            print(f"self-test: wrong bridge diagnostic: {e}",
                  file=sys.stderr)
            return 1
    else:
        print("self-test: malformed bridge track not caught",
              file=sys.stderr)
        return 1
    one_way = fabricate(valid=True)
    one_way["traceEvents"] = [
        e for e in one_way["traceEvents"]
        if e.get("name") != "bridge s1->s0"]
    try:
        validate(one_way, expect_masters=1)
    except TraceError as e:
        if "no reverse" not in str(e):
            print(f"self-test: wrong one-way diagnostic: {e}",
                  file=sys.stderr)
            return 1
    else:
        print("self-test: one-way bridge edge not caught", file=sys.stderr)
        return 1
    print("self-test: PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="trace JSON file")
    parser.add_argument("--expect-masters", type=int, default=None)
    parser.add_argument("--expect-bridges", type=int, default=None)
    parser.add_argument("--max-ts", type=float, default=None)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        parser.error("a trace file (or --self-test) is required")
    with open(args.trace, "r", encoding="utf-8") as f:
        doc = json.load(f)
    try:
        counts = validate(doc, expect_masters=args.expect_masters,
                          expect_bridges=args.expect_bridges,
                          max_ts=args.max_ts)
    except TraceError as e:
        print(f"trace_check: {args.trace}: {e}", file=sys.stderr)
        return 1
    print(f"trace_check: {args.trace}: ok "
          f"({counts['X']} spans, {counts['C']} counter samples, "
          f"{counts['i']} instants)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
