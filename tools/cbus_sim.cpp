// cbus_sim: command-line driver for the platform simulator.
//
// Two ways in, one engine: `--experiment FILE` runs a declarative
// experiment file (sweeps, per-core workloads, CSV/JSON sinks -- see
// docs/EXPERIMENTS.md), while the classic flags describe a single
// campaign. Both paths route through the src/exp/ subsystem, so a flag
// invocation is exactly a one-job experiment.
//
// Usage:
//   cbus_sim --experiment FILE [--threads N] [--batch N] [--seed S]
//            [--pwcet] [--csv] [--metrics LIST]
//   cbus_sim [--kernel NAME] [--setup rp|cba|hcba]
//            [--scenario iso|con|stream] [--arbiter KIND]
//            [--controller static|adaptive:<w>] [--runs N] [--seed S]
//            [--cores N] [--pwcet] [--csv] [--metrics LIST]
//   cbus_sim --list kernels|setups|arbiters|controllers|scenarios|
//            topologies|metrics
//
// Examples:
//   cbus_sim --experiment examples/experiments/paper_con.exp --threads 4
//   cbus_sim --kernel matrix --setup cba --scenario con --runs 100 --pwcet
//   cbus_sim --kernel tblook --setup rp --scenario iso --csv
//   cbus_sim --list metrics
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bus/arbiter_factory.hpp"
#include "bus/topology.hpp"
#include "common/build_info.hpp"
#include "ctrl/controller.hpp"
#include "exp/experiment.hpp"
#include "metrics/probes.hpp"
#include "obs/telemetry.hpp"
#include "platform/config_file.hpp"
#include "vec/vec.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;

struct Options {
  std::string experiment_path;  // declarative experiment file
  std::string config_path;      // platform config file (base layer)
  std::optional<std::string> kernel;
  std::optional<std::string> setup;
  std::optional<std::string> scenario;
  std::optional<std::string> arbiter;
  std::optional<std::string> controller;
  std::optional<std::uint32_t> runs;
  std::optional<std::uint64_t> seed;
  std::optional<std::uint32_t> cores;
  std::optional<std::uint32_t> threads;
  std::optional<std::uint32_t> batch;
  std::optional<std::string> metrics;
  std::optional<bool> retain_raw;       // --retain raw|stream
  std::string checkpoint_path;          // --checkpoint PATH
  std::uint32_t shard_index = 0;        // --shard i/N
  std::uint32_t shard_count = 1;
  std::string trace_path;               // --trace PATH
  std::optional<std::uint32_t> trace_run;
  std::string trace_window;             // --trace-window A:B
  std::string telemetry_path;           // --telemetry PATH
  std::string simd;                     // --simd native|scalar|off
  bool progress = false;
  bool pwcet = false;
  bool csv = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "cbus_sim -- CBA bus platform simulator\n"
      "  --experiment FILE experiment file: sweeps, per-core workloads,\n"
      "                    CSV/JSON outputs (see docs/EXPERIMENTS.md);\n"
      "                    other flags act as overrides\n"
      "  --threads N       worker threads for experiment work slices [hardware]\n"
      "  --batch N         lockstep replicas per work slice; output is\n"
      "                    byte-identical for any value            [1]\n"
      "  --config FILE     platform config file layered under the other\n"
      "                    flags (see src/platform/config_file.hpp)\n"
      "  --kernel NAME     EEMBC-like kernel (cacheb canrdr matrix tblook\n"
      "                    a2time rspeed puwmod ttsprk)     [matrix]\n"
      "  --setup S         rp | cba | hcba                  [cba]\n"
      "  --scenario S      iso (isolation) | con (max contention, WCET\n"
      "                    protocol) | stream (3 streaming co-runners)\n"
      "                                                     [con]\n"
      "  --arbiter A       rr|fifo|priority|lottery|rp|tdma|drr|da [rp]\n"
      "  --controller C    static | adaptive:<window>[:<gain>] -- credit\n"
      "                    controller over the CBA Table-I increments\n"
      "                    (see docs/CONTROLLERS.md)          [static]\n"
      "  --runs N          randomized runs per job          [20]\n"
      "  --seed S          campaign seed                    [0xC0FFEE]\n"
      "  --cores N         core count (CBA rescaled)        [4]\n"
      "  --pwcet           run the MBPTA analysis on the samples\n"
      "  --csv             per-run CSV on stdout\n"
      "  --retain MODE     raw (keep per-run series; default) | stream\n"
      "                    (constant-memory exact digests; required for\n"
      "                    --checkpoint/--shard; forbids --csv/--pwcet)\n"
      "  --checkpoint FILE slice checkpoint: finished slices are appended\n"
      "                    and a rerun of the same spec+seed skips them\n"
      "                    (see docs/CAMPAIGNS.md)\n"
      "  --shard I/N       run only this process's share of the work\n"
      "                    slices (s mod N == I) into its --checkpoint\n"
      "                    file; fold the N files with cbus_merge\n"
      "  --metrics LIST    metric keys for the CSV/JSON outputs\n"
      "                    (comma-separated, or `all`); the experiment\n"
      "                    `metrics` directive spelled as a flag\n"
      "  --trace FILE      cycle-accurate Chrome/Perfetto trace of one run\n"
      "                    (request->grant->transfer spans, credit and\n"
      "                    bridge-queue counters; see docs/OBSERVABILITY.md)\n"
      "  --trace-run K     which run the trace captures            [0]\n"
      "  --trace-window A:B  only record bus cycles in [A, B)\n"
      "  --progress        throttled progress line on stderr (stdout and\n"
      "                    all output files stay byte-identical)\n"
      "  --telemetry FILE  machine-readable run telemetry (runs/sec, ETA,\n"
      "                    per-thread busy fraction, slice times, peak RSS)\n"
      "  --simd MODE       native (as built; default) | scalar (engine\n"
      "                    path, portable kernels) | off (classic\n"
      "                    lane-major path, as a CBUS_SIMD=off build);\n"
      "                    output is byte-identical by contract -- the\n"
      "                    dispatch-parity check runs all three\n"
      "  --version         print build provenance and exit\n"
      "  --list WHAT       print known values and exit:\n"
      "                    kernels | setups | arbiters | controllers |\n"
      "                    scenarios | topologies | metrics\n";
  std::exit(code);
}

/// `--list WHAT`: the discoverable companion to every exit-2 "unknown
/// value" error. One value per line so shell loops can consume it.
[[noreturn]] void list_values(const std::string& what) {
  if (what == "kernels") {
    for (const auto kernel : cbus::workloads::all_kernels()) {
      std::cout << kernel << "\n";
    }
  } else if (what == "setups") {
    for (const auto name : cbus::platform::setup_names()) {
      std::cout << name << "\n";
    }
  } else if (what == "arbiters") {
    for (const auto kind : cbus::bus::all_arbiter_kinds()) {
      std::cout << cbus::bus::short_name(kind) << "\n";
    }
  } else if (what == "controllers") {
    for (const auto kind : cbus::ctrl::all_controller_kinds()) {
      std::cout << cbus::ctrl::short_name(kind) << "\n";
    }
  } else if (what == "scenarios") {
    for (const auto scenario : cbus::exp::all_scenarios()) {
      std::cout << cbus::exp::to_string(scenario) << "\n";
    }
  } else if (what == "topologies") {
    for (const auto& form : cbus::bus::topology_forms()) {
      std::cout << std::left << std::setw(26) << form.name << ' '
                << form.description << "\n";
    }
  } else if (what == "metrics") {
    for (const auto& info : cbus::metrics::metric_catalog()) {
      std::ostringstream key;
      key << info.key;
      if (info.per_master) key << "[i]";
      std::cout << std::left << std::setw(26) << key.str() << ' '
                << info.description << "\n";
    }
  } else {
    std::cerr << "cbus_sim: unknown --list topic '" << what
              << "' (kernels|setups|arbiters|controllers|scenarios|"
                 "topologies|metrics)\n";
    std::exit(2);
  }
  std::exit(0);
}

/// One-line fatal error on stderr; scripted sweeps fail loudly instead of
/// scrolling a usage dump.
[[noreturn]] void die(const std::string& message) {
  std::cerr << "cbus_sim: " << message << "\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    try {
      if (arg == "--experiment") {
        opt.experiment_path = value();
      } else if (arg == "--config") {
        opt.config_path = value();
      } else if (arg == "--kernel") {
        opt.kernel = value();
      } else if (arg == "--setup") {
        opt.setup = value();
      } else if (arg == "--scenario") {
        opt.scenario = value();
      } else if (arg == "--arbiter") {
        opt.arbiter = value();
      } else if (arg == "--controller") {
        opt.controller = value();
      } else if (arg == "--runs") {
        opt.runs = platform::parse_config_u32(value(), arg, 0);
      } else if (arg == "--seed") {
        opt.seed = platform::parse_config_uint(value(), arg, 0);
      } else if (arg == "--cores") {
        opt.cores = platform::parse_config_u32(value(), arg, 0);
      } else if (arg == "--threads") {
        opt.threads = platform::parse_config_u32(value(), arg, 0);
      } else if (arg == "--batch") {
        opt.batch = platform::parse_config_u32(value(), arg, 0);
        if (*opt.batch == 0) die("--batch must be positive");
      } else if (arg == "--metrics") {
        opt.metrics = value();
      } else if (arg == "--retain") {
        const std::string mode = value();
        if (mode == "raw") {
          opt.retain_raw = true;
        } else if (mode == "stream") {
          opt.retain_raw = false;
        } else {
          die("--retain wants raw or stream, got '" + mode + "'");
        }
      } else if (arg == "--checkpoint") {
        opt.checkpoint_path = value();
      } else if (arg == "--shard") {
        const std::string split = value();
        const auto slash = split.find('/');
        if (slash == std::string::npos) {
          die("--shard wants I/N (e.g. 0/3), got '" + split + "'");
        }
        opt.shard_index =
            platform::parse_config_u32(split.substr(0, slash), arg, 0);
        opt.shard_count =
            platform::parse_config_u32(split.substr(slash + 1), arg, 0);
        if (opt.shard_count == 0 || opt.shard_index >= opt.shard_count) {
          die("--shard index must be in [0, N): got '" + split + "'");
        }
      } else if (arg == "--trace") {
        opt.trace_path = value();
      } else if (arg == "--trace-run") {
        opt.trace_run = platform::parse_config_u32(value(), arg, 0);
      } else if (arg == "--trace-window") {
        opt.trace_window = value();
      } else if (arg == "--telemetry") {
        opt.telemetry_path = value();
      } else if (arg == "--simd") {
        opt.simd = value();
        if (opt.simd != "native" && opt.simd != "scalar" &&
            opt.simd != "off") {
          die("--simd wants native, scalar or off, got '" + opt.simd + "'");
        }
      } else if (arg == "--progress") {
        opt.progress = true;
      } else if (arg == "--version") {
        std::cout << common::build_info_line() << "\n";
        std::exit(0);
      } else if (arg == "--list") {
        list_values(value());
      } else if (arg == "--pwcet") {
        opt.pwcet = true;
      } else if (arg == "--csv") {
        opt.csv = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(0);
      } else {
        die("unknown option: " + arg);
      }
    } catch (const std::exception&) {
      die("bad value for " + arg);
    }
  }

  // Validate enum-like flags up front with one-line errors.
  if (opt.kernel.has_value()) {
    const auto known = workloads::all_kernels();
    if (std::find(known.begin(), known.end(), *opt.kernel) == known.end()) {
      die("unknown kernel '" + *opt.kernel +
          "' (see: cbus_sim --list kernels)");
    }
  }
  if (opt.setup.has_value() && *opt.setup != "rp" && *opt.setup != "cba" &&
      *opt.setup != "hcba") {
    die("unknown setup '" + *opt.setup + "' (see: cbus_sim --list setups)");
  }
  if (opt.arbiter.has_value()) {
    try {
      (void)bus::parse_arbiter_kind(*opt.arbiter);
    } catch (const std::exception&) {
      die("unknown arbiter '" + *opt.arbiter +
          "' (see: cbus_sim --list arbiters)");
    }
  }
  if (opt.controller.has_value()) {
    try {
      (void)ctrl::parse_controller(*opt.controller);
    } catch (const std::exception& e) {
      die("bad --controller value: " + std::string(e.what()) +
          " (see: cbus_sim --list controllers)");
    }
  }
  if (opt.scenario.has_value()) {
    try {
      (void)exp::parse_scenario(*opt.scenario);
    } catch (const std::exception&) {
      die("unknown scenario '" + *opt.scenario +
          "' (see: cbus_sim --list scenarios)");
    }
  }
  if (opt.metrics.has_value()) {
    try {
      (void)exp::parse_metric_selection(*opt.metrics);
    } catch (const std::exception&) {
      die("bad --metrics selection '" + *opt.metrics +
          "' (see: cbus_sim --list metrics)");
    }
  }
  if (opt.runs.has_value() && *opt.runs == 0) die("--runs must be positive");
  if (opt.shard_count > 1 && opt.checkpoint_path.empty()) {
    die("--shard needs --checkpoint (the shard's results live there)");
  }
  if ((opt.trace_run.has_value() || !opt.trace_window.empty()) &&
      opt.trace_path.empty()) {
    die("--trace-run/--trace-window need --trace");
  }
  return opt;
}

/// Assemble the ExperimentSpec: the experiment file (or built-in defaults)
/// with explicitly-passed flags layered on top.
exp::ExperimentSpec build_spec(const Options& opt) {
  exp::ExperimentSpec spec;
  if (!opt.experiment_path.empty()) {
    spec = exp::load_experiment(opt.experiment_path);
  } else {
    // The classic flag interface is a one-job experiment over the paper
    // platform; `--setup cba` was its historical default. The default
    // must not be injected over a --config file, whose own setup line
    // has to win unless --setup is passed explicitly (handled below).
    spec.name = "cli";
    if (opt.config_path.empty()) {
      spec.set_platform_key("setup", opt.setup.value_or("cba"));
    }
  }
  if (!opt.config_path.empty()) {
    std::ifstream in(opt.config_path);
    if (!in.good()) die("cannot open config file: " + opt.config_path);
    std::ostringstream text;
    text << in.rdbuf();
    spec.platform_text = text.str();
  }
  if (opt.kernel.has_value()) spec.kernel = *opt.kernel;
  if (opt.scenario.has_value()) spec.scenario = *opt.scenario;
  if (opt.setup.has_value()) spec.set_platform_key("setup", *opt.setup);
  if (opt.arbiter.has_value()) {
    spec.set_platform_key("arbiter", *opt.arbiter);
  }
  if (opt.controller.has_value()) {
    spec.set_platform_key("controller", *opt.controller);
  }
  if (opt.cores.has_value()) {
    spec.set_platform_key("cores", std::to_string(*opt.cores));
  }
  if (opt.runs.has_value()) spec.runs = *opt.runs;
  if (opt.seed.has_value()) spec.seed = *opt.seed;
  if (opt.threads.has_value()) spec.threads = *opt.threads;
  if (opt.batch.has_value()) spec.batch = *opt.batch;
  if (opt.metrics.has_value()) {
    spec.metrics = exp::parse_metric_selection(*opt.metrics);
  }
  if (opt.pwcet) spec.pwcet = true;
  if (opt.csv) spec.csv_path = "-";
  if (opt.retain_raw.has_value()) spec.retain_raw = *opt.retain_raw;
  if (!opt.checkpoint_path.empty()) {
    spec.checkpoint_path = opt.checkpoint_path;
  }
  if (!opt.trace_path.empty()) spec.trace_path = opt.trace_path;
  if (opt.trace_run.has_value()) spec.trace_run = *opt.trace_run;
  if (!opt.trace_window.empty()) {
    const auto colon = opt.trace_window.find(':');
    if (colon == std::string::npos) {
      die("--trace-window wants A:B (bus cycles), got '" + opt.trace_window +
          "'");
    }
    try {
      spec.trace_window_begin = platform::parse_config_uint(
          opt.trace_window.substr(0, colon), "--trace-window", 0);
      spec.trace_window_end = platform::parse_config_uint(
          opt.trace_window.substr(colon + 1), "--trace-window", 0);
    } catch (const std::exception&) {
      die("bad value for --trace-window: '" + opt.trace_window + "'");
    }
  }
  if (!opt.telemetry_path.empty()) spec.telemetry_path = opt.telemetry_path;
  if (opt.progress) spec.progress = true;
  try {
    exp::validate_spec(spec);
  } catch (const std::exception& e) {
    die(e.what());
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  // --simd routes the whole process before any campaign starts: "off"
  // keeps the classic lane-major path (what a CBUS_SIMD=off build runs),
  // "scalar" keeps the engine but answers every kernel with the portable
  // implementation. Byte-identity across all three modes is the
  // dispatch contract (tests/dispatch_parity_test.sh pins it).
  if (opt.simd == "off") {
    vec::set_engine_enabled(false);
  } else if (opt.simd == "scalar") {
    vec::force_scalar(true);
  }
  try {
    const exp::ExperimentSpec spec = build_spec(opt);
    exp::RunOptions run_options;
    if (opt.threads.has_value()) {
      run_options.threads_override = *opt.threads;
    }
    run_options.shard_index = opt.shard_index;
    run_options.shard_count = opt.shard_count;
    run_options.progress = opt.progress;
    const exp::ExperimentResult result = exp::run_experiment(spec, run_options);
    if (!spec.telemetry_path.empty()) {
      std::ofstream out(spec.telemetry_path, std::ios::trunc);
      if (!out.good()) {
        die("cannot write telemetry file: " + spec.telemetry_path);
      }
      obs::write_telemetry_json(out, result.telemetry, "run");
    }
    if (opt.shard_count > 1) {
      // A shard holds only its own slices: sinks would render partial
      // campaigns. Its output is the checkpoint; cbus_merge emits.
      std::cout << "cbus_sim: shard " << opt.shard_index << "/"
                << opt.shard_count << " complete: " << spec.checkpoint_path
                << "\n";
    } else {
      exp::emit_outputs(spec, result.jobs, std::cout);
    }
    if (const std::size_t failed = result.failed_jobs(); failed != 0) {
      std::cerr << "cbus_sim: " << failed << " of " << result.jobs.size()
                << " job(s) failed\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cbus_sim: error: " << e.what() << "\n";
    return 1;
  }
}
