// cbus_sim: command-line driver for the platform simulator.
//
// Runs a measurement campaign for one kernel under a chosen bus setup and
// scenario and prints machine-readable CSV (one row per run) plus a
// summary -- the entry point for scripting parameter sweeps without
// writing C++.
//
// Usage:
//   cbus_sim [--kernel NAME] [--setup rp|cba|hcba] [--scenario iso|con|stream]
//            [--arbiter rr|fifo|priority|lottery|rp|tdma]
//            [--runs N] [--seed S] [--cores N] [--pwcet] [--csv]
//
// Examples:
//   cbus_sim --kernel matrix --setup cba --scenario con --runs 100 --pwcet
//   cbus_sim --kernel tblook --setup rp --scenario iso --csv
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "mbpta/pwcet.hpp"
#include "platform/config_file.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

namespace {

using namespace cbus;

struct Options {
  std::string config_path;  // optional platform config file
  std::string kernel = "matrix";
  std::string setup = "cba";
  std::string scenario = "con";
  std::string arbiter;  // empty = the platform default (random permutations)
  std::uint32_t runs = 20;
  std::uint64_t seed = 0xC0FFEE;
  std::uint32_t cores = 4;
  bool pwcet = false;
  bool csv = false;
};

[[noreturn]] void usage(int code) {
  std::cout <<
      "cbus_sim -- CBA bus platform simulator\n"
      "  --config FILE     platform config file (overrides --setup/--cores;\n"
      "                    see src/platform/config_file.hpp for the keys)\n"
      "  --kernel NAME     EEMBC-like kernel (cacheb canrdr matrix tblook\n"
      "                    a2time rspeed puwmod ttsprk)     [matrix]\n"
      "  --setup S         rp | cba | hcba                  [cba]\n"
      "  --scenario S      iso (isolation) | con (max contention, WCET\n"
      "                    protocol) | stream (3 streaming co-runners)\n"
      "                                                     [con]\n"
      "  --arbiter A       rr|fifo|priority|lottery|rp|tdma [rp]\n"
      "  --runs N          randomized runs                  [20]\n"
      "  --seed S          campaign seed                    [0xC0FFEE]\n"
      "  --cores N         core count (CBA rescaled)        [4]\n"
      "  --pwcet           run the MBPTA analysis on the samples\n"
      "  --csv             per-run CSV on stdout\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--config") {
      opt.config_path = value();
    } else if (arg == "--kernel") {
      opt.kernel = value();
    } else if (arg == "--setup") {
      opt.setup = value();
    } else if (arg == "--scenario") {
      opt.scenario = value();
    } else if (arg == "--arbiter") {
      opt.arbiter = value();
    } else if (arg == "--runs") {
      opt.runs = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value(), nullptr, 0);
    } else if (arg == "--cores") {
      opt.cores = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--pwcet") {
      opt.pwcet = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(2);
    }
  }
  return opt;
}

platform::BusSetup parse_setup(const std::string& text) {
  if (text == "rp") return platform::BusSetup::kRp;
  if (text == "cba") return platform::BusSetup::kCba;
  if (text == "hcba") return platform::BusSetup::kHcba;
  std::cerr << "unknown setup: " << text << "\n";
  usage(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    platform::PlatformConfig cfg;
    if (!opt.config_path.empty()) {
      cfg = platform::load_config(opt.config_path);
      if (opt.scenario == "con" &&
          cfg.mode != PlatformMode::kWcetEstimation) {
        std::cerr << "note: scenario 'con' needs 'mode = wcet' in the "
                     "config file\n";
      }
    } else {
      const platform::BusSetup setup = parse_setup(opt.setup);
      cfg = opt.scenario == "con"
                ? platform::PlatformConfig::paper_wcet(setup)
                : platform::PlatformConfig::paper(setup);
      if (opt.cores != 4) {
        cfg.n_cores = opt.cores;
        if (cfg.cba.has_value()) {
          cfg.cba = core::CbaConfig::homogeneous(opt.cores,
                                                 cfg.timings.max_latency());
        }
      }
      if (!opt.arbiter.empty()) {
        cfg.arbiter = bus::parse_arbiter_kind(opt.arbiter);
      }
    }
    cfg.validate();

    auto tua = workloads::make_eembc(opt.kernel);
    platform::CampaignConfig campaign;
    campaign.runs = opt.runs;
    campaign.base_seed = opt.seed;

    platform::CampaignResult result;
    if (opt.scenario == "iso") {
      result = platform::run_isolation(cfg, *tua, campaign);
    } else if (opt.scenario == "con") {
      result = platform::run_max_contention(cfg, *tua, campaign);
    } else if (opt.scenario == "stream") {
      workloads::StreamingStream s1(0), s2(0), s3(0);
      std::vector<cpu::OpStream*> streams{&s1, &s2, &s3};
      streams.resize(
          std::min<std::size_t>(streams.size(), cfg.n_cores - 1));
      result = platform::run_with_corunners(cfg, *tua, streams, campaign);
    } else {
      std::cerr << "unknown scenario: " << opt.scenario << "\n";
      usage(2);
    }

    if (opt.csv) {
      std::cout << "run,cycles\n";
      for (std::size_t i = 0; i < result.samples.size(); ++i) {
        std::cout << i << ',' << result.samples[i] << '\n';
      }
    }

    std::cout << "kernel=" << opt.kernel << " setup=" << opt.setup
              << " scenario=" << opt.scenario << " runs=" << opt.runs
              << "\nmean=" << result.exec_time.mean()
              << " min=" << result.exec_time.min()
              << " max=" << result.exec_time.max()
              << " ci95=" << result.exec_time.ci95_halfwidth()
              << " bus_util=" << result.bus_utilization.mean()
              << " unfinished=" << result.unfinished_runs << "\n";

    if (opt.pwcet) {
      mbpta::MbptaConfig mcfg;
      mcfg.block_size = std::max<std::size_t>(2, opt.runs / 30);
      const auto analysis = mbpta::analyze(result.samples, mcfg);
      std::cout << "gumbel: location=" << analysis.fit.location
                << " scale=" << analysis.fit.scale
                << " cv_ok=" << analysis.diagnostics.cv.accepted
                << " indep_ok=" << analysis.diagnostics.runs.accepted << "\n";
      for (const auto& point : analysis.curve) {
        std::cout << "pwcet p=" << point.exceedance_probability << " -> "
                  << point.wcet_estimate << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
